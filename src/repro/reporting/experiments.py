"""Runners for every experiment reproduced from the paper.

Each function builds the relevant circuit, runs the relevant algorithm and
returns a small result dataclass.  The benchmark suite calls these runners and
asserts on the *shape* of the results (who wins, which regions appear, how the
iteration cost falls); the examples print them; EXPERIMENTS.md records the
measured values next to the paper's.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.ac import ACAnalysis
from ..analysis.compare import BodeComparison, compare_responses
from ..analysis.sensitivity import screen_elements
from ..circuits.miller_ota import build_miller_ota
from ..circuits.ota import build_positive_feedback_ota
from ..circuits.rc_ladder import build_rc_ladder
from ..circuits.ua741 import build_ua741
from ..interpolation.adaptive import (
    AdaptiveOptions,
    AdaptiveResult,
    AdaptiveScalingInterpolator,
)
from ..interpolation.basic import InterpolationResult, interpolate_network_function
from ..interpolation.reference import NumericalReference, generate_reference
from ..interpolation.scaling import ScaleFactors, initial_scale_factors
from ..engine.session import AnalysisSession
from ..mna.builder import system_dimension
from ..symbolic.sbg import simplification_before_generation
from ..netlist.transform import to_admittance_form
from ..nodal.sampler import NetworkFunctionSampler
from ..symbolic.sdg import SDGResult, simplification_during_generation

__all__ = [
    "Table1Result",
    "Table2Result",
    "Fig2Result",
    "CpuReductionResult",
    "ScalingAblationResult",
    "BatchSweepResult",
    "SensitivityScreeningResult",
    "SessionWorkloadResult",
    "SymbolicKernelResult",
    "MonteCarloEnsembleResult",
    "ParallelEnsembleResult",
    "StreamingEnsembleResult",
    "CompiledModelResult",
    "ScalingPoint",
    "ScalingCurveResult",
    "run_table1",
    "run_table2_table3",
    "run_fig2",
    "run_cpu_reduction",
    "run_scaling_ablation",
    "run_sdg_experiment",
    "run_batch_sweep",
    "run_sensitivity_screening",
    "run_session_workload",
    "run_symbolic_kernel",
    "run_montecarlo_ensemble",
    "run_parallel_ensemble",
    "run_streaming_ensemble",
    "run_compiled_model",
    "run_scaling_curve",
    "ua741_tolerance_space",
]


# --------------------------------------------------------------------------- #
# Table 1 — positive-feedback OTA, unscaled vs frequency-scaled interpolation
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class Table1Result:
    """Reproduction of Table 1 (a: unscaled, b: frequency scale factor)."""

    unscaled_numerator: InterpolationResult
    unscaled_denominator: InterpolationResult
    scaled_numerator: InterpolationResult
    scaled_denominator: InterpolationResult
    frequency_scale: float
    degree_bound: int

    def unscaled_valid_count(self, kind="denominator") -> int:
        """Number of coefficients the unscaled interpolation can certify."""
        result = (self.unscaled_denominator if kind == "denominator"
                  else self.unscaled_numerator)
        return 0 if result.region is None else result.region.width

    def scaled_valid_count(self, kind="denominator") -> int:
        """Number of coefficients the scaled interpolation certifies."""
        result = (self.scaled_denominator if kind == "denominator"
                  else self.scaled_numerator)
        return 0 if result.region is None else result.region.width


def run_table1(frequency_scale=1e9, significant_digits=6) -> Table1Result:
    """Reproduce Table 1: OTA differential gain, unscaled vs scaled."""
    circuit, spec = build_positive_feedback_ota()
    unscaled = interpolate_network_function(
        circuit, spec, factors=ScaleFactors(),
        significant_digits=significant_digits)
    scaled = interpolate_network_function(
        circuit, spec, factors=ScaleFactors(frequency=frequency_scale),
        significant_digits=significant_digits)
    return Table1Result(
        unscaled_numerator=unscaled.numerator,
        unscaled_denominator=unscaled.denominator,
        scaled_numerator=scaled.numerator,
        scaled_denominator=scaled.denominator,
        frequency_scale=frequency_scale,
        degree_bound=unscaled.denominator.num_points - 1,
    )


# --------------------------------------------------------------------------- #
# Tables 2 & 3 — µA741 denominator, successive adaptive interpolations
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class Table2Result:
    """Reproduction of Tables 2 and 3: the adaptive iteration sequence."""

    adaptive: AdaptiveResult
    degree_bound: int
    initial_factors: ScaleFactors

    @property
    def iterations(self):
        """Per-interpolation records (factors, regions, new coefficients)."""
        return self.adaptive.iterations

    def region_sequence(self) -> List[Tuple[int, int]]:
        """``(start, end)`` of the valid region of every interpolation."""
        return [(record.region_start, record.region_end)
                for record in self.adaptive.iterations
                if record.region_start is not None]

    def covered_all(self) -> bool:
        """True when the union of regions covered every coefficient."""
        return self.adaptive.converged


def run_table2_table3(options=None) -> Table2Result:
    """Reproduce Tables 2–3: adaptive scaling on the µA741 denominator."""
    circuit, spec = build_ua741()
    admittance = to_admittance_form(circuit)
    sampler = NetworkFunctionSampler(admittance, spec)
    options = options or AdaptiveOptions()
    interpolator = AdaptiveScalingInterpolator(sampler, kind="denominator",
                                               options=options)
    result = interpolator.run()
    return Table2Result(
        adaptive=result,
        degree_bound=result.degree_bound,
        initial_factors=initial_scale_factors(admittance),
    )


# --------------------------------------------------------------------------- #
# Fig. 2 — Bode overlay of interpolated coefficients vs electrical simulator
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class Fig2Result:
    """Reproduction of Fig. 2: interpolated vs simulated Bode plot."""

    frequencies: np.ndarray
    interpolated_response: np.ndarray
    simulated_response: np.ndarray
    comparison: BodeComparison
    reference: NumericalReference

    def magnitude_db(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(interpolated, simulated)`` magnitude curves in dB."""
        tiny = np.finfo(float).tiny
        interp = 20.0 * np.log10(np.maximum(np.abs(self.interpolated_response), tiny))
        simulated = 20.0 * np.log10(np.maximum(np.abs(self.simulated_response), tiny))
        return interp, simulated


def run_fig2(f_min=1.0, f_max=1e8, points_per_decade=8,
             options=None) -> Fig2Result:
    """Reproduce Fig. 2: µA741 voltage-gain Bode plot, interpolation vs AC."""
    circuit, spec = build_ua741()
    reference = generate_reference(circuit, spec, options=options)
    decades = np.log10(f_max / f_min)
    frequencies = np.logspace(np.log10(f_min), np.log10(f_max),
                              int(decades * points_per_decade) + 1)
    interpolated = reference.frequency_response(frequencies)
    simulated = ACAnalysis(circuit, spec).frequency_response(frequencies)
    comparison = compare_responses(frequencies, simulated, interpolated)
    return Fig2Result(
        frequencies=frequencies,
        interpolated_response=interpolated,
        simulated_response=simulated,
        comparison=comparison,
        reference=reference,
    )


# --------------------------------------------------------------------------- #
# CPU-time reduction (Section 3.3) — per-iteration cost with / without Eq. 17
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class CpuReductionResult:
    """Per-iteration point counts and times, with and without deflation."""

    with_reduction_points: List[int]
    with_reduction_times: List[float]
    without_reduction_points: List[int]
    without_reduction_times: List[float]

    def total_points(self) -> Tuple[int, int]:
        """``(with, without)`` total interpolation points."""
        return sum(self.with_reduction_points), sum(self.without_reduction_points)

    def reduction_ratio(self) -> float:
        """Fraction of interpolation points saved by Eq. 17."""
        with_points, without_points = self.total_points()
        if without_points == 0:
            return 0.0
        return 1.0 - with_points / without_points

    def per_iteration_decreasing(self) -> bool:
        """True when the point count never increases across iterations (with Eq. 17)."""
        points = self.with_reduction_points
        return all(points[i + 1] <= points[i] for i in range(len(points) - 1))


def run_cpu_reduction(options=None) -> CpuReductionResult:
    """Reproduce the Section 3.3 claim: later iterations get cheaper with Eq. 17."""
    circuit, spec = build_ua741()
    admittance = to_admittance_form(circuit)

    def run(deflation):
        sampler = NetworkFunctionSampler(admittance, spec)
        base = options or AdaptiveOptions()
        opts = dataclasses.replace(base, deflation=deflation)
        result = AdaptiveScalingInterpolator(sampler, kind="denominator",
                                             options=opts).run()
        points = [record.num_points for record in result.iterations]
        times = [record.elapsed_seconds for record in result.iterations]
        return points, times

    with_points, with_times = run(True)
    without_points, without_times = run(False)
    return CpuReductionResult(
        with_reduction_points=with_points,
        with_reduction_times=with_times,
        without_reduction_points=without_points,
        without_reduction_times=without_times,
    )


# --------------------------------------------------------------------------- #
# Ablations — simultaneous vs single-factor scaling, adaptive vs fixed grid
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class ScalingAblationResult:
    """Ablation of the scale-factor strategy on the µA741 denominator."""

    simultaneous: AdaptiveResult
    single_factor: AdaptiveResult
    simultaneous_max_factor: float
    single_factor_max_factor: float
    fixed_grid_interpolations: Optional[int]
    fixed_grid_covered: Optional[int]
    degree_bound: int


def run_scaling_ablation(fixed_grid_decades=4.0, options=None) -> ScalingAblationResult:
    """Compare simultaneous f/g scaling, single-factor scaling and a fixed grid."""
    circuit, spec = build_ua741()
    admittance = to_admittance_form(circuit)
    base = options or AdaptiveOptions()

    def run(single_scale):
        sampler = NetworkFunctionSampler(admittance, spec)
        opts = dataclasses.replace(base, single_scale=single_scale)
        result = AdaptiveScalingInterpolator(sampler, kind="denominator",
                                             options=opts).run()
        max_factor = max(record.factors.max_factor()
                         for record in result.iterations)
        return result, max_factor

    simultaneous, simultaneous_max = run(False)
    single, single_max = run(True)

    # Fixed-grid strategy of Section 3.1: interpolate at log-spaced per-power
    # ratios and count how many interpolations are needed to cover everything.
    sampler = NetworkFunctionSampler(admittance, spec)
    degree_bound = sampler.max_polynomial_degree()
    initial = initial_scale_factors(admittance)
    covered: set = set()
    grid_interpolations = 0
    from ..interpolation.basic import interpolate_polynomial

    ratio = 1.0
    max_grid = 12
    while len(covered) <= degree_bound and grid_interpolations < max_grid:
        factors = initial.with_ratio_applied(10.0 ** (fixed_grid_decades *
                                                      grid_interpolations))
        result = interpolate_polynomial(sampler, "denominator", factors,
                                        significant_digits=base.significant_digits)
        grid_interpolations += 1
        if result.region is not None:
            covered.update(result.region.indices)

    return ScalingAblationResult(
        simultaneous=simultaneous,
        single_factor=single,
        simultaneous_max_factor=simultaneous_max,
        single_factor_max_factor=single_max,
        fixed_grid_interpolations=grid_interpolations,
        fixed_grid_covered=len([i for i in covered if i <= degree_bound]),
        degree_bound=degree_bound,
    )


# --------------------------------------------------------------------------- #
# Batched frequency sweeps — per-point vs batch-engine evaluation
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class BatchSweepResult:
    """Per-point vs batched sweep of one circuit's network function."""

    circuit_name: str
    dimension: int
    num_points: int
    pointwise_seconds: float
    batched_seconds: float
    max_relative_deviation: float
    bitwise_identical: bool

    @property
    def speedup(self) -> float:
        """Wall-clock ratio per-point / batched."""
        if self.batched_seconds == 0.0:
            return float("inf")
        return self.pointwise_seconds / self.batched_seconds

    def describe(self) -> str:
        """One line for the experiment table."""
        return (
            f"{self.circuit_name:>12} (M={self.dimension:>3}): "
            f"per-point {self.pointwise_seconds * 1e3:7.1f} ms, "
            f"batched {self.batched_seconds * 1e3:7.1f} ms, "
            f"speedup {self.speedup:4.1f}x, "
            f"max rel dev {self.max_relative_deviation:.2e}"
        )


def _default_batch_sweep_circuits():
    return [
        ("rc_ladder_12", build_rc_ladder(12)),
        ("rc_ladder_24", build_rc_ladder(24)),
        ("rc_ladder_48", build_rc_ladder(48)),
        ("ua741", build_ua741()),
    ]


def run_batch_sweep(num_points=200, circuits=None, method="auto",
                    f_min=1.0, f_max=1e8, repeats=3) -> List[BatchSweepResult]:
    """Compare per-point and batched sweeps over a set of circuits.

    Every circuit is swept over ``num_points`` log-spaced frequencies twice —
    once through the original one-matrix-at-a-time path, once through the
    batch engine — taking the best wall-clock of ``repeats`` runs for each
    path, and the transfer values are compared point by point.

    Parameters
    ----------
    circuits:
        Optional list of ``(name, (circuit, spec))`` pairs; defaults to the
        RC ladders with 12 / 24 / 48 stages plus the µA741 macro.
    """
    if circuits is None:
        circuits = _default_batch_sweep_circuits()
    frequencies = np.logspace(np.log10(f_min), np.log10(f_max), num_points)
    points = (2j * np.pi * frequencies).tolist()
    results = []
    for name, (circuit, spec) in circuits:
        admittance = to_admittance_form(circuit)
        pointwise_seconds = batched_seconds = float("inf")
        for __ in range(repeats):
            # Fresh samplers per repeat: the batched timing then always pays
            # the one-time structure / factorization-pattern setup, so the
            # reported speedup is a cold-sweep number, not a warm-cache one.
            sampler = NetworkFunctionSampler(admittance, spec, method=method)
            start = time.perf_counter()
            pointwise = sampler.sample_many(points, batch=False)
            pointwise_seconds = min(pointwise_seconds,
                                    time.perf_counter() - start)
            sampler = NetworkFunctionSampler(admittance, spec, method=method)
            start = time.perf_counter()
            batched = sampler.sample_many(points, batch=True)
            batched_seconds = min(batched_seconds,
                                  time.perf_counter() - start)
        reference = np.array([sample.transfer() for sample in pointwise])
        values = np.array([sample.transfer() for sample in batched])
        deviation = float(np.max(
            np.abs(values - reference)
            / np.maximum(np.abs(reference), np.finfo(float).tiny)
        ))
        bitwise = all(
            p.numerator == b.numerator and p.denominator == b.denominator
            for p, b in zip(pointwise, batched)
        )
        results.append(BatchSweepResult(
            circuit_name=name,
            dimension=sampler.dimension,
            num_points=num_points,
            pointwise_seconds=pointwise_seconds,
            batched_seconds=batched_seconds,
            max_relative_deviation=deviation,
            bitwise_identical=bitwise,
        ))
    return results


# --------------------------------------------------------------------------- #
# SDG error control (Eq. 3) on the Miller OTA
# --------------------------------------------------------------------------- #


def run_sdg_experiment(epsilon=0.01) -> SDGResult:
    """Exercise the SDG error control against a generated reference."""
    circuit, spec = build_miller_ota()
    reference = generate_reference(circuit, spec)
    return simplification_during_generation(circuit, spec, reference,
                                            epsilon=epsilon)


# --------------------------------------------------------------------------- #
# Rank-1 sensitivity screening vs brute-force rebuild (PR 2)
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class SensitivityScreeningResult:
    """Rank-1 vs rebuild element screening of one circuit."""

    circuit_name: str
    dimension: int
    num_elements: int
    num_frequencies: int
    rank1_seconds: float
    rebuild_seconds: float
    #: Worst relative deviation between the two engines' removal /
    #: perturbation responses, measured against the transfer-function scale
    #: ``max(|response|, |baseline|)`` at each frequency.
    max_relative_deviation: float
    #: True when both engines sort the elements into the same removal order.
    ranking_identical: bool
    #: True when both engines flag the same elements as singular-on-removal.
    singular_sets_identical: bool

    @property
    def speedup(self) -> float:
        """Wall-clock ratio rebuild / rank-1."""
        if self.rank1_seconds == 0.0:
            return float("inf")
        return self.rebuild_seconds / self.rank1_seconds

    def describe(self) -> str:
        """One line for the experiment table."""
        return (
            f"{self.circuit_name:>12} (n={self.dimension:>3}, "
            f"E={self.num_elements:>3}, F={self.num_frequencies:>3}): "
            f"rebuild {self.rebuild_seconds * 1e3:8.1f} ms, "
            f"rank-1 {self.rank1_seconds * 1e3:7.1f} ms, "
            f"speedup {self.speedup:5.1f}x, "
            f"max rel dev {self.max_relative_deviation:.2e}, "
            f"ranking {'==' if self.ranking_identical else '!='}"
        )


def _screening_deviation(rank1, rebuild):
    """Worst response deviation between two ScreeningResults (same elements).

    Each removal / perturbation response is compared against the rebuild
    oracle relative to ``max(|response|, |baseline|)`` per frequency — the
    transfer-function scale that also normalizes the influence figures.
    Singular (``None``) responses must agree between the engines; a
    ``None`` mismatch counts as infinite deviation.
    """
    tiny = np.finfo(float).tiny
    worst = 0.0
    for ours, oracle in zip(rank1.screenings, rebuild.screenings):
        for candidate, reference in (
            (ours.removal_response, oracle.removal_response),
            (ours.perturbed_response, oracle.perturbed_response),
        ):
            if (candidate is None) != (reference is None):
                return float("inf")
            if candidate is None:
                continue
            scale = np.maximum(
                np.maximum(np.abs(reference), np.abs(rebuild.baseline)), tiny)
            worst = max(worst, float(np.max(
                np.abs(candidate - reference) / scale)))
    return worst


def run_sensitivity_screening(num_frequencies=25, circuits=None,
                              perturbation=0.01, f_min=1.0, f_max=1e8,
                              repeats=3) -> List[SensitivityScreeningResult]:
    """Compare rank-1 and rebuild element screening over a set of circuits.

    Every circuit's full element set is screened over ``num_frequencies``
    log-spaced sample frequencies twice — once through the Sherman–Morrison
    engine on the cached baseline factorization, once through the brute-force
    rebuild path — taking the best wall-clock of ``repeats`` runs for each,
    and the removal / perturbation responses, influence rankings and
    singular-element sets are compared.

    Parameters
    ----------
    circuits:
        Optional list of ``(name, (circuit, spec))`` pairs; defaults to the
        µA741 macro and the Miller OTA.
    """
    if circuits is None:
        circuits = [("ua741", build_ua741()), ("miller_ota", build_miller_ota())]
    frequencies = np.logspace(np.log10(f_min), np.log10(f_max),
                              num_frequencies)
    results = []
    for name, (circuit, spec) in circuits:
        # The unknown count follows from the element list alone — no need to
        # assemble a full MNA system just to report it.
        dimension = system_dimension(circuit)
        rank1_seconds = rebuild_seconds = float("inf")
        rank1 = rebuild = None
        for __ in range(repeats):
            start = time.perf_counter()
            rank1 = screen_elements(circuit, spec, frequencies,
                                    perturbation=perturbation, method="rank1")
            rank1_seconds = min(rank1_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            rebuild = screen_elements(circuit, spec, frequencies,
                                      perturbation=perturbation,
                                      method="rebuild")
            rebuild_seconds = min(rebuild_seconds,
                                  time.perf_counter() - start)
        ranking = ([i.name for i in rank1.influences()]
                   == [i.name for i in rebuild.influences()])
        singular = (
            {s.name for s in rank1.screenings if s.removal_response is None}
            == {s.name for s in rebuild.screenings
                if s.removal_response is None}
        )
        results.append(SensitivityScreeningResult(
            circuit_name=name,
            dimension=dimension,
            num_elements=len(rank1.screenings),
            num_frequencies=num_frequencies,
            rank1_seconds=rank1_seconds,
            rebuild_seconds=rebuild_seconds,
            max_relative_deviation=_screening_deviation(rank1, rebuild),
            ranking_identical=ranking,
            singular_sets_identical=singular,
        ))
    return results


# --------------------------------------------------------------------------- #
# Chained analysis workloads — the AnalysisSession cache
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class SessionWorkloadResult:
    """Chained multi-stage workload with and without an AnalysisSession."""

    circuit_name: str
    dimension: int
    num_verify_points: int
    num_screen_points: int
    num_candidates: int
    cold_seconds: float
    session_seconds: float
    #: Worst relative deviation between any cold-run and session-run output
    #: array; ``inf`` when a ranking or removal list differs at all.  The
    #: session must be a pure cache, so the acceptance bar is exactly 0.0.
    max_relative_deviation: float
    cache_hits: int
    cache_misses: int

    @property
    def speedup(self) -> float:
        """Wall-clock ratio cold / session-backed."""
        if self.session_seconds == 0.0:
            return float("inf")
        return self.cold_seconds / self.session_seconds

    def describe(self) -> str:
        """One line for the experiment table."""
        return (
            f"{self.circuit_name:>12} (n={self.dimension:>3}, "
            f"verify={self.num_verify_points:>3}, "
            f"screen={self.num_screen_points:>3}): "
            f"cold {self.cold_seconds * 1e3:8.1f} ms, "
            f"session {self.session_seconds * 1e3:8.1f} ms, "
            f"speedup {self.speedup:4.1f}x, "
            f"max rel dev {self.max_relative_deviation:.2e}, "
            f"cache {self.cache_hits}h/{self.cache_misses}m"
        )


def _chained_workload(circuit, spec, verify_frequencies, screen_frequencies,
                      epsilon, max_candidates, session=None):
    """One chained pass: Bode → screening → SBG → interpolation → report.

    Every stage is written as a standalone consumer taking only the circuit
    and the spec — exactly how separate tools (a Bode plotter, a screening
    dashboard, the SBG reducer, the reference generator, a report renderer)
    would call the library.  Without a session each stage rebuilds its
    formulation, refactors its sweep and regenerates the reference; with one
    they share everything cacheable.  Returns a dict of stage outputs for
    the zero-deviation comparison.
    """
    outputs = {}

    # 1. AC verification: the simulator-style Bode curve on the dense grid.
    outputs["bode"] = ACAnalysis(circuit, spec, session=session) \
        .frequency_response(verify_frequencies)

    # 2. Stability check: unity-gain crossing from the same curve — a second
    #    consumer of the verification grid (thinks in magnitudes, not nodes).
    response = ACAnalysis(circuit, spec, session=session) \
        .frequency_response(verify_frequencies)
    crossing = int(np.argmin(np.abs(np.abs(response) - 1.0)))
    outputs["unity_crossing"] = np.asarray(
        [verify_frequencies[crossing], np.angle(response[crossing])])

    # 3. Element influence screening (the SBG ranking input).
    screening = screen_elements(circuit, spec, screen_frequencies,
                                session=session)
    influences = screening.influences()
    outputs["ranking"] = [influence.name for influence in influences]
    outputs["screen_baseline"] = screening.baseline

    # 4. SBG reduction of the provably weak tail of the ranking.
    candidates = [influence.name for influence in influences
                  if influence.removal_error < epsilon][:max_candidates]
    reference = generate_reference(circuit, spec, session=session)
    sbg = simplification_before_generation(
        circuit, spec, reference, epsilon=epsilon,
        frequencies=screen_frequencies, candidates=candidates,
        session=session)
    outputs["removed"] = list(sbg.removed_names)
    outputs["final_error"] = np.asarray([sbg.final_error])

    # 5. Interpolation deliverable: the reference response on the dense grid.
    reference = generate_reference(circuit, spec, session=session)
    outputs["reference_response"] = reference.frequency_response(
        verify_frequencies)

    # 6. Fig. 2 overlay: interpolated reference vs the simulator curve — the
    #    paper's verification figure as yet another standalone consumer.
    reference = generate_reference(circuit, spec, session=session)
    interpolated = reference.frequency_response(verify_frequencies)
    simulated = ACAnalysis(circuit, spec, session=session) \
        .frequency_response(verify_frequencies)
    scale = np.maximum(np.abs(simulated), np.finfo(float).tiny)
    outputs["fig2_deviation"] = np.abs(interpolated - simulated) / scale

    # 7. Report pass: re-query curve, ranking and reference for rendering.
    outputs["report_bode"] = ACAnalysis(circuit, spec, session=session) \
        .frequency_response(verify_frequencies)
    report_screening = screen_elements(circuit, spec, screen_frequencies,
                                       session=session)
    outputs["report_ranking"] = [influence.name for influence
                                 in report_screening.influences()]
    reference = generate_reference(circuit, spec, session=session)
    outputs["report_reference"] = reference.frequency_response(
        verify_frequencies)
    return outputs


def _workload_deviation(cold, warm) -> float:
    """Worst relative output deviation between two workload passes."""
    worst = 0.0
    tiny = np.finfo(float).tiny
    for key, reference in cold.items():
        candidate = warm[key]
        if isinstance(reference, list):
            if candidate != reference:
                return float("inf")
            continue
        reference = np.asarray(reference)
        candidate = np.asarray(candidate)
        scale = np.maximum(np.abs(reference), tiny)
        worst = max(worst, float(np.max(np.abs(candidate - reference)
                                        / scale)))
    return worst


def run_session_workload(num_verify_points=300, num_screen_points=25,
                         epsilon=0.05, max_candidates=8, repeats=3,
                         f_min=1.0, f_max=1e8,
                         circuits=None) -> List[SessionWorkloadResult]:
    """Chained Bode → screening → SBG → interpolation → report comparison.

    Runs the workload of :func:`_chained_workload` twice per circuit — once
    with every stage standalone ("cold", rebuilding everything) and once
    sharing one :class:`~repro.engine.session.AnalysisSession` — taking the
    best wall-clock of ``repeats`` runs for each.  A *fresh* session is used
    per session-mode repeat, so the measured time is one honest session
    lifetime, not a pre-warmed cache.

    Parameters
    ----------
    circuits:
        Optional list of ``(name, (circuit, spec))`` pairs; defaults to the
        µA741 macro.
    """
    if circuits is None:
        circuits = [("ua741", build_ua741())]
    verify_frequencies = np.logspace(np.log10(f_min), np.log10(f_max),
                                     num_verify_points)
    screen_frequencies = np.logspace(np.log10(f_min), np.log10(f_max),
                                     num_screen_points)
    results = []
    for name, (circuit, spec) in circuits:
        cold_seconds = session_seconds = float("inf")
        cold_outputs = session_outputs = None
        last_session = None
        for __ in range(repeats):
            start = time.perf_counter()
            cold_outputs = _chained_workload(
                circuit, spec, verify_frequencies, screen_frequencies,
                epsilon, max_candidates, session=None)
            cold_seconds = min(cold_seconds, time.perf_counter() - start)

            session = AnalysisSession()
            start = time.perf_counter()
            session_outputs = _chained_workload(
                circuit, spec, verify_frequencies, screen_frequencies,
                epsilon, max_candidates, session=session)
            session_seconds = min(session_seconds,
                                  time.perf_counter() - start)
            last_session = session
        results.append(SessionWorkloadResult(
            circuit_name=name,
            dimension=system_dimension(circuit),
            num_verify_points=num_verify_points,
            num_screen_points=num_screen_points,
            num_candidates=max_candidates,
            cold_seconds=cold_seconds,
            session_seconds=session_seconds,
            max_relative_deviation=_workload_deviation(cold_outputs,
                                                       session_outputs),
            cache_hits=last_session.hits,
            cache_misses=last_session.misses,
        ))
    return results


# --------------------------------------------------------------------------- #
# Monte Carlo ensembles — stacked parameter-batch solves vs per-sample rebuilds
# --------------------------------------------------------------------------- #


#: The µA741 macro's discrete passives — the realistic tolerance set of the
#: ensemble benchmark (transistor small-signal parameters are bias-derived,
#: not toleranced components).
_UA741_PASSIVES = ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
                   "RL", "Cc", "CL")


def ua741_tolerance_space(tolerance=0.05):
    """µA741 circuit, spec and the tolerance space over its discrete passives."""
    from ..montecarlo import ParameterSpace

    circuit, spec = build_ua741()
    space = ParameterSpace(circuit,
                           {name: tolerance for name in _UA741_PASSIVES})
    return circuit, spec, space


@dataclasses.dataclass
class MonteCarloEnsembleResult:
    """Vectorized ensemble engine vs the rebuild-per-sample baseline.

    Three arms over the *same* sampled element values:

    * the rebuild baseline — one circuit copy + MNA build + production
      :class:`~repro.analysis.ac.ACAnalysis` sweep per sample,
    * the vectorized engine with ``solver="lu"`` — same hand-rolled kernels,
      assembly replayed by the value program; ``exact_deviation`` is its
      worst absolute response difference against the baseline and the
      acceptance bar is exactly 0.0 (the vectorization is a pure
      reorganization of the rebuild path's arithmetic),
    * the vectorized engine with ``solver="lapack"`` — the throughput
      default; ``speedup`` is baseline time over this arm's time, and
      ``batch_invariant`` asserts it returns bit-identical responses to the
      same LAPACK solver applied one sample at a time.
    """

    circuit_name: str
    dimension: int
    num_samples: int
    num_frequencies: int
    num_axes: int
    rebuild_seconds: float
    vectorized_seconds: float
    exact_arm_seconds: float
    #: max |vectorized(lu) − rebuild| over every sample and frequency.
    exact_deviation: float
    #: Worst relative deviation of the LAPACK arm vs the rebuild baseline
    #: (different factorization arithmetic, so ~1e-12, not 0).
    lapack_relative_deviation: float
    #: Vectorized LAPACK responses == one-sample-at-a-time LAPACK responses.
    batch_invariant: bool

    @property
    def speedup(self) -> float:
        """Wall-clock ratio rebuild / vectorized (LAPACK arm)."""
        if self.vectorized_seconds == 0.0:
            return float("inf")
        return self.rebuild_seconds / self.vectorized_seconds

    @property
    def exact_arm_speedup(self) -> float:
        """Wall-clock ratio rebuild / vectorized (bit-exact LU arm)."""
        if self.exact_arm_seconds == 0.0:
            return float("inf")
        return self.rebuild_seconds / self.exact_arm_seconds

    def describe(self) -> str:
        """One line for the experiment table."""
        return (
            f"{self.circuit_name:>12} (n={self.dimension:>3}, "
            f"M={self.num_samples:>4}, F={self.num_frequencies:>4}, "
            f"E={self.num_axes:>3}): "
            f"rebuild {self.rebuild_seconds:6.2f} s, "
            f"vectorized {self.vectorized_seconds:6.2f} s "
            f"(speedup {self.speedup:4.1f}x), "
            f"exact arm {self.exact_arm_seconds:6.2f} s "
            f"dev {self.exact_deviation!r}, "
            f"lapack dev {self.lapack_relative_deviation:.2e}, "
            f"batch-invariant {'ok' if self.batch_invariant else 'NO'}"
        )


def run_montecarlo_ensemble(num_samples=256, num_points=200, tolerance=0.05,
                            seed=42, circuits=None,
                            f_min=1.0, f_max=1e8,
                            repeats=3) -> List[MonteCarloEnsembleResult]:
    """Compare the vectorized ensemble engine against per-sample rebuilds.

    Every circuit's tolerance ensemble is evaluated three ways over identical
    sampled values (see :class:`MonteCarloEnsembleResult`).  The vectorized
    LAPACK arm takes the best wall-clock of ``repeats`` runs; the two slow
    arms run once (their several-second durations are stable).

    Parameters
    ----------
    circuits:
        Optional list of ``(name, (circuit, spec, space))`` triples;
        defaults to the µA741 macro with ±5 % tolerances on its discrete
        passives (:func:`ua741_tolerance_space`).
    """
    from ..montecarlo import ensemble_sweep, rebuild_sweep

    if circuits is None:
        circuits = [("ua741", ua741_tolerance_space(tolerance))]
    frequencies = np.logspace(np.log10(f_min), np.log10(f_max), num_points)
    results = []
    for name, (circuit, spec, space) in circuits:
        values = space.sample_values(num_samples, seed=seed)

        vectorized_seconds = float("inf")
        vectorized = None
        for __ in range(repeats):
            start = time.perf_counter()
            vectorized = ensemble_sweep(circuit, spec, frequencies, space,
                                        values=values, solver="lapack")
            vectorized_seconds = min(vectorized_seconds,
                                     time.perf_counter() - start)

        start = time.perf_counter()
        rebuild = rebuild_sweep(circuit, spec, frequencies, space,
                                values=values, solver="lu")
        rebuild_seconds = time.perf_counter() - start

        start = time.perf_counter()
        exact = ensemble_sweep(circuit, spec, frequencies, space,
                               values=values, solver="lu")
        exact_arm_seconds = time.perf_counter() - start

        one_at_a_time = rebuild_sweep(circuit, spec, frequencies, space,
                                      values=values, solver="lapack")

        exact_deviation = float(np.max(np.abs(exact.responses
                                              - rebuild.responses)))
        scale = np.maximum(np.abs(rebuild.responses), np.finfo(float).tiny)
        lapack_deviation = float(np.max(
            np.abs(vectorized.responses - rebuild.responses) / scale))
        results.append(MonteCarloEnsembleResult(
            circuit_name=name,
            dimension=system_dimension(circuit),
            num_samples=num_samples,
            num_frequencies=num_points,
            num_axes=len(space),
            rebuild_seconds=rebuild_seconds,
            vectorized_seconds=vectorized_seconds,
            exact_arm_seconds=exact_arm_seconds,
            exact_deviation=exact_deviation,
            lapack_relative_deviation=lapack_deviation,
            batch_invariant=bool(np.array_equal(vectorized.responses,
                                                one_at_a_time.responses)),
        ))
    return results


# --------------------------------------------------------------------------- #
# Supervised parallel ensemble — multiprocess driver vs single-process
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class ParallelEnsembleResult:
    """Supervised multiprocess ensemble vs the single-process resilient run.

    Both arms evaluate the *same* up-front sampled values with quarantine
    on; ``bit_identical`` asserts the supervised driver's whole contract —
    responses, quarantined indices and the fixed-shard-order statistics
    stream all match the ``workers=1`` reference exactly.  Throughputs are
    in ensemble sample·frequency points per second, the unit a production
    tolerance run is provisioned by.
    """

    circuit_name: str
    dimension: int
    num_samples: int
    num_frequencies: int
    num_axes: int
    shard_size: int
    workers: int
    single_seconds: float
    parallel_seconds: float
    redispatches: int
    quarantined: int
    #: Responses, quarantined indices and statistics of the multiprocess
    #: arm match the workers=1 reference bit for bit.
    bit_identical: bool

    @property
    def sample_points(self) -> int:
        return self.num_samples * self.num_frequencies

    @property
    def single_throughput(self) -> float:
        """Single-process sample·points per second."""
        return self.sample_points / self.single_seconds

    @property
    def parallel_throughput(self) -> float:
        """Multiprocess sample·points per second."""
        return self.sample_points / self.parallel_seconds

    @property
    def speedup(self) -> float:
        """Wall-clock ratio single-process / multiprocess."""
        if self.parallel_seconds == 0.0:
            return float("inf")
        return self.single_seconds / self.parallel_seconds

    def describe(self) -> str:
        """One line for the experiment table."""
        return (
            f"{self.circuit_name:>12} (n={self.dimension:>3}, "
            f"M={self.num_samples:>6}, F={self.num_frequencies:>3}, "
            f"shard={self.shard_size}): "
            f"single {self.single_seconds:6.2f} s "
            f"({self.single_throughput:9.0f} pts/s), "
            f"{self.workers} workers {self.parallel_seconds:6.2f} s "
            f"({self.parallel_throughput:9.0f} pts/s, "
            f"speedup {self.speedup:4.2f}x), "
            f"redispatches {self.redispatches}, "
            f"quarantined {self.quarantined}, "
            f"bit-identical {'ok' if self.bit_identical else 'NO'}"
        )


def run_parallel_ensemble(num_samples=100_000, num_points=8, tolerance=0.05,
                          seed=42, shard_size=1024, workers=None,
                          f_min=1.0, f_max=1e8) -> ParallelEnsembleResult:
    """Throughput and bit-parity of the supervised multiprocess driver.

    The µA741 tolerance ensemble is drawn once and evaluated twice with
    quarantine on: sequentially in-process (``workers=1``) and through the
    supervised multiprocess driver.  On a single-core box the parallel arm
    only pays its supervision overhead; either way the bit-parity gate — the
    actual ISSUE 9 contract — is asserted on the full production shape.
    """
    import os as _os

    from ..montecarlo import parallel_ensemble_sweep

    circuit, spec, space = ua741_tolerance_space(tolerance)
    frequencies = np.logspace(np.log10(f_min), np.log10(f_max), num_points)
    values = space.sample_values(num_samples, seed=seed)
    if workers is None:
        workers = max(2, min(4, _os.cpu_count() or 1))

    start = time.perf_counter()
    single = parallel_ensemble_sweep(circuit, spec, frequencies, space,
                                     values=values, shard_size=shard_size,
                                     workers=1)
    single_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = parallel_ensemble_sweep(circuit, spec, frequencies, space,
                                       values=values, shard_size=shard_size,
                                       workers=workers)
    parallel_seconds = time.perf_counter() - start

    statistics_identical = all(
        np.array_equal(getattr(single.parallel.statistics, field),
                       getattr(parallel.parallel.statistics, field))
        for field in ("sum_db", "sumsq_db", "min_db", "max_db"))
    bit_identical = (
        np.array_equal(single.responses, parallel.responses, equal_nan=True)
        and single.report.quarantined == parallel.report.quarantined
        and single.parallel.statistics.count == parallel.parallel.statistics.count
        and statistics_identical)
    return ParallelEnsembleResult(
        circuit_name="ua741",
        dimension=system_dimension(circuit),
        num_samples=num_samples,
        num_frequencies=num_points,
        num_axes=len(space),
        shard_size=shard_size,
        workers=parallel.parallel.workers,
        single_seconds=single_seconds,
        parallel_seconds=parallel_seconds,
        redispatches=parallel.parallel.redispatches,
        quarantined=len(parallel.report.quarantined),
        bit_identical=bool(bit_identical),
    )


# --------------------------------------------------------------------------- #
# Streaming ensemble — O(F)-memory estimators at 10^6 samples + IS yield
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class StreamingEnsembleResult:
    """The ``store_responses=False`` estimator pipeline at production scale.

    Three gates in one experiment:

    * **memory** — the headline streaming sweep folds every response row
      into O(F) accumulators and drops it; ``traced_peak_mb`` is the
      tracemalloc high-water of the sweep itself (the up-front sample draw
      is excluded — it is O(M·axes) by design and reusable), ``rss_peak_mb``
      the process-lifetime RSS including any worker children;
    * **parity** — on a prefix of the same draw, sequential streaming and
      the supervised multiprocess driver produce bit-identical accumulator
      state (sums, extrema, histogram, weight moments);
    * **importance sampling** — the shifted-proposal yield estimate agrees
      with plain Monte Carlo within combined standard errors on a
      moderate-failure spec, with a healthy failure-region ESS.
    """

    circuit_name: str
    dimension: int
    num_samples: int
    num_frequencies: int
    num_axes: int
    shard_size: int
    streaming_seconds: float
    #: tracemalloc peak of the streaming fold, in MiB (sample draw excluded).
    traced_peak_mb: float
    #: what a materialized (M, F) complex response block alone would need.
    materialized_mb: float
    #: ru_maxrss of the process (+ children), in MiB.
    rss_peak_mb: float
    memory_ceiling_mb: float
    parity_samples: int
    #: Full accumulator state identical: sequential vs multiprocess driver.
    bit_identical: bool
    plain_failure: float
    plain_standard_error: float
    weighted_failure: float
    weighted_standard_error: float
    failure_ess: float
    importance_degenerate: bool

    @property
    def sample_points(self) -> int:
        return self.num_samples * self.num_frequencies

    @property
    def throughput(self) -> float:
        """Streaming sample·points per second."""
        return self.sample_points / self.streaming_seconds

    @property
    def within_ceiling(self) -> bool:
        """The streaming fold stayed under the hard tracemalloc ceiling."""
        return self.traced_peak_mb <= self.memory_ceiling_mb

    @property
    def is_consistent(self) -> bool:
        """|p_IS − p_MC| within 4 combined standard errors."""
        combined = math.hypot(self.plain_standard_error,
                              self.weighted_standard_error)
        return abs(self.weighted_failure - self.plain_failure) \
            <= 4.0 * combined

    def describe(self) -> str:
        """One line for the experiment table."""
        return (
            f"{self.circuit_name:>12} (n={self.dimension:>3}, "
            f"M={self.num_samples:>7}, F={self.num_frequencies:>3}, "
            f"shard={self.shard_size}): "
            f"streaming {self.streaming_seconds:7.2f} s "
            f"({self.throughput:9.0f} pts/s), "
            f"peak {self.traced_peak_mb:6.1f} MiB "
            f"(materialized {self.materialized_mb:7.1f} MiB, "
            f"ceiling {self.memory_ceiling_mb:.0f}, "
            f"rss {self.rss_peak_mb:.0f}), "
            f"bit-identical {'ok' if self.bit_identical else 'NO'}, "
            f"IS p={self.weighted_failure:.3e}±{self.weighted_standard_error:.1e} "
            f"vs MC p={self.plain_failure:.3e}±{self.plain_standard_error:.1e} "
            f"(ESS {self.failure_ess:.0f}, "
            f"consistent {'ok' if self.is_consistent else 'NO'})"
        )


def run_streaming_ensemble(num_samples=1_000_000, num_points=8,
                           tolerance=0.05, seed=42, shard_size=2048,
                           memory_ceiling_mb=256.0, parity_samples=4096,
                           yield_samples=2000, f_min=1.0,
                           f_max=1e8) -> StreamingEnsembleResult:
    """O(F)-memory 10⁶-sample µA741 ensemble plus the IS yield cross-check.

    The headline arm streams ``num_samples`` µA741 tolerance samples through
    per-shard accumulators under ``tracemalloc``, never materializing the
    ``(M, F)`` response block; the parity arm re-runs a prefix through the
    supervised multiprocess driver and asserts bit-identical accumulator
    state; the yield arm compares the screening-aimed importance-sampled
    failure estimate against plain Monte Carlo on a moderate-failure spec,
    where both estimators resolve the answer and a discrepancy is
    statistically meaningful.
    """
    import resource
    import tracemalloc

    from ..analysis.montecarlo import (YieldSpec, importance_yield,
                                       monte_carlo_analysis, yield_analysis)
    from ..montecarlo import ensemble_sweep, parallel_ensemble_sweep

    circuit, spec, space = ua741_tolerance_space(tolerance)
    frequencies = np.logspace(np.log10(f_min), np.log10(f_max), num_points)

    # -- headline: the big streaming fold under a memory microscope -------- #
    # The draw happens outside the traced region: it is O(M·axes), reusable
    # input, and exactly what the streaming contract does NOT cover.
    values = space.sample_values(num_samples, seed=seed)
    tracemalloc.start()
    start = time.perf_counter()
    streamed = ensemble_sweep(circuit, spec, frequencies, space,
                              values=values, store_responses=False,
                              shard_size=shard_size)
    streaming_seconds = time.perf_counter() - start
    __, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert streamed.responses is None
    assert streamed.statistics.count == num_samples

    # -- parity: sequential vs multiprocess accumulator bits --------------- #
    prefix = values[:parity_samples]
    sequential = ensemble_sweep(circuit, spec, frequencies, space,
                                values=prefix, store_responses=False,
                                shard_size=shard_size)
    parallel = parallel_ensemble_sweep(circuit, spec, frequencies, space,
                                       values=prefix, store_responses=False,
                                       shard_size=shard_size, workers=2)
    bit_identical = (
        sequential.statistics.count == parallel.statistics.count
        and all(np.array_equal(getattr(sequential.statistics, field),
                               getattr(parallel.statistics, field))
                for field in ("sum_db", "sumsq_db", "min_db", "max_db",
                              "histogram")))

    # -- yield: importance sampling vs plain Monte Carlo ------------------- #
    plain = monte_carlo_analysis(circuit, spec, frequencies, space,
                                 samples=yield_samples, seed=seed + 1)
    magnitudes = plain.ensemble.magnitudes_db()
    pivot = int(np.argmax(magnitudes.std(axis=0)))
    column = magnitudes[:, pivot]
    threshold = float(column.mean() - 1.2 * column.std())
    yield_spec = YieldSpec(name="gain", minimum_gain_db=threshold,
                           at_frequency=float(frequencies[pivot]))
    plain_yield = yield_analysis(plain, yield_spec)
    plain_failure = 1.0 - plain_yield.fraction
    plain_se = math.sqrt(max(plain_failure * (1.0 - plain_failure), 0.0)
                         / plain_yield.total)
    weighted = importance_yield(circuit, spec, frequencies, yield_spec,
                                space, samples=yield_samples, seed=seed + 2,
                                magnitude=1.5, shard_size=shard_size)
    diagnostics = weighted.failure_diagnostics()

    usage = (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
             + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    return StreamingEnsembleResult(
        circuit_name="ua741",
        dimension=system_dimension(circuit),
        num_samples=num_samples,
        num_frequencies=num_points,
        num_axes=len(space),
        shard_size=shard_size,
        streaming_seconds=streaming_seconds,
        traced_peak_mb=traced_peak / 2**20,
        materialized_mb=num_samples * num_points * 16 / 2**20,
        rss_peak_mb=usage / 1024.0,  # ru_maxrss is KiB on Linux
        memory_ceiling_mb=memory_ceiling_mb,
        parity_samples=parity_samples,
        bit_identical=bool(bit_identical),
        plain_failure=plain_failure,
        plain_standard_error=plain_se,
        weighted_failure=weighted.failure_probability,
        weighted_standard_error=weighted.failure_standard_error,
        failure_ess=diagnostics.ess,
        importance_degenerate=diagnostics.degenerate,
    )


# --------------------------------------------------------------------------- #
# Compiled transfer model — coefficient-tensor serving vs the matrix engine
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class CompiledModelResult:
    """Compiled coefficient-tensor serving vs the matrix ensemble engine.

    Both arms evaluate the *same* sampled element values over the same
    frequency grid on the µA741 behavioral macro:

    * the matrix arm — :func:`~repro.montecarlo.ensemble_sweep` with the
      LAPACK solver, one stacked factorization per (sample, frequency),
    * the compiled arm — :func:`~repro.montecarlo.compiled_ensemble_sweep`
      served warm from a session-cached
      :class:`~repro.symbolic.compile.CompiledTransferModel`: zero matrix
      solves, pure coefficient-tensor broadcasts.

    ``speedup`` is matrix over warm-serve wall clock (best of ``repeats``
    each); ``relative_deviation`` is the worst response-scale relative
    difference between the arms.  ``session_compiles`` counts symbolic →
    tensor lowerings the session performed across the cold call plus every
    warm repeat — the compile-once acceptance bar is exactly 1.
    """

    circuit_name: str
    dimension: int
    num_samples: int
    num_frequencies: int
    num_axes: int
    #: Source (numerator + denominator) terms and folded incidence groups.
    num_terms: int
    num_groups: int
    #: Symbolic generation + lowering, paid once per session fingerprint.
    compile_seconds: float
    matrix_seconds: float
    serve_seconds: float
    relative_deviation: float
    session_compiles: int

    @property
    def speedup(self) -> float:
        """Wall-clock ratio matrix / compiled warm serve."""
        if self.serve_seconds == 0.0:
            return float("inf")
        return self.matrix_seconds / self.serve_seconds

    def describe(self) -> str:
        """One line for the experiment table."""
        return (
            f"{self.circuit_name:>12} (n={self.dimension:>3}, "
            f"M={self.num_samples:>4}, F={self.num_frequencies:>4}, "
            f"E={self.num_axes:>3}, terms={self.num_terms}, "
            f"groups={self.num_groups}): "
            f"matrix {self.matrix_seconds:6.3f} s, "
            f"serve {self.serve_seconds:6.4f} s "
            f"(speedup {self.speedup:5.1f}x, "
            f"compile {self.compile_seconds:5.2f} s, "
            f"compiles {self.session_compiles}), "
            f"deviation {self.relative_deviation:.2e}"
        )


def run_compiled_model(num_samples=256, num_points=200, tolerance=0.05,
                       seed=42, f_min=1.0, f_max=1e8,
                       repeats=3) -> CompiledModelResult:
    """Compare compiled coefficient-tensor serving against the matrix engine.

    The workload is the µA741 behavioral macro with ±``tolerance`` on its
    twelve :data:`~repro.circuits.ua741.UA741_MACRO_TOLERANCED` axes.  The
    matrix arm takes the best of ``repeats`` LAPACK ensemble sweeps; the
    compiled arm pays one cold call (symbolic generation + lowering, timed
    as ``compile_seconds``), then takes the best of ``repeats`` warm serves
    from the same :class:`~repro.engine.session.AnalysisSession`.
    """
    from ..circuits.ua741 import build_ua741_macro
    from ..montecarlo import ParameterSpace, ensemble_sweep
    from ..montecarlo.compiled import compiled_ensemble_sweep

    circuit, spec = build_ua741_macro(tolerance=tolerance)
    space = ParameterSpace(circuit)
    frequencies = np.logspace(np.log10(f_min), np.log10(f_max), num_points)
    values = space.sample_values(num_samples, seed=seed)

    matrix_seconds = float("inf")
    matrix = None
    for __ in range(repeats):
        start = time.perf_counter()
        matrix = ensemble_sweep(circuit, spec, frequencies, space,
                                values=values, solver="lapack")
        matrix_seconds = min(matrix_seconds, time.perf_counter() - start)

    session = AnalysisSession()
    start = time.perf_counter()
    compiled = compiled_ensemble_sweep(circuit, spec, frequencies, space,
                                       values=values, session=session)
    cold_seconds = time.perf_counter() - start

    serve_seconds = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        compiled = compiled_ensemble_sweep(circuit, spec, frequencies, space,
                                           values=values, session=session)
        serve_seconds = min(serve_seconds, time.perf_counter() - start)

    scale = np.maximum(np.abs(matrix.responses), np.finfo(float).tiny)
    deviation = float(np.max(
        np.abs(compiled.responses - matrix.responses) / scale))

    model = session.compiled_transfer(
        circuit, spec,
        free_symbols=[name for name in space.names])
    return CompiledModelResult(
        circuit_name="ua741-macro",
        dimension=system_dimension(circuit),
        num_samples=num_samples,
        num_frequencies=num_points,
        num_axes=len(space),
        num_terms=sum(model.term_count()),
        num_groups=sum(model.group_count()),
        compile_seconds=max(cold_seconds - serve_seconds, 0.0),
        matrix_seconds=matrix_seconds,
        serve_seconds=serve_seconds,
        relative_deviation=deviation,
        session_compiles=session.stats()["compiled"]["compiles"],
    )


# --------------------------------------------------------------------------- #
# Symbolic kernel — interned minor-memoized expansion vs the legacy path
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class SymbolicKernelResult:
    """µA741-macro symbolic generation + SDG sweep: interned vs legacy kernel.

    ``multisets_identical`` covers the full transfer function *and* every
    SDG-simplified function of the epsilon sweep;
    ``max_coefficient_deviation`` is the worst relative deviation of any
    numerator/denominator coefficient value between the two kernels.
    """

    circuit_name: str
    dimension: int
    numerator_terms: int
    denominator_terms: int
    epsilons: Tuple[float, ...]
    kept_terms: int
    legacy_seconds: float
    interned_seconds: float
    multisets_identical: bool
    max_coefficient_deviation: float
    distinct_terms: int
    expanded_products: int
    minor_hit_rate: float

    @property
    def speedup(self) -> float:
        """Wall-clock ratio legacy / interned."""
        if self.interned_seconds == 0.0:
            return float("inf")
        return self.legacy_seconds / self.interned_seconds

    def describe(self) -> str:
        """One line for the experiment table."""
        return (
            f"{self.circuit_name:>12} (M={self.dimension}, "
            f"{self.numerator_terms}+{self.denominator_terms} terms, "
            f"{len(self.epsilons)} eps): "
            f"legacy {self.legacy_seconds:6.2f} s, "
            f"interned {self.interned_seconds:6.2f} s, "
            f"speedup {self.speedup:4.1f}x, "
            f"multisets {'ok' if self.multisets_identical else 'DIFFER'}, "
            f"max coeff dev {self.max_coefficient_deviation:.2e}, "
            f"minor hits {self.minor_hit_rate * 100.0:.0f}%"
        )


def _term_multiset(expression):
    return sorted((term.symbols, term.s_power) for term in expression.terms)


def _coefficient_deviation(legacy_tf, interned_tf) -> float:
    worst = 0.0
    for kind in ("numerator", "denominator"):
        expression = getattr(interned_tf, kind)
        for power in range(expression.max_s_power() + 1):
            a = legacy_tf.coefficient_value(kind, power)
            b = interned_tf.coefficient_value(kind, power)
            if a.is_zero() and b.is_zero():
                continue
            if a.is_zero() or b.is_zero():
                return float("inf")
            worst = max(worst, float(abs(a - b) / abs(a)))
    return worst


def run_symbolic_kernel(epsilons=(0.3, 0.1, 0.03, 0.01, 0.001),
                        max_terms=1_000_000,
                        reduced=False) -> SymbolicKernelResult:
    """A/B the symbolic kernels on the µA741-macro generation + SDG workload.

    The workload is the complete symbolic pipeline a designer runs against
    the numerical reference: generate the exact network function, then sweep
    SDG over ``epsilons`` for the compression-versus-error trade-off curve
    (the Eq. 3 error control at each budget).  ``kernel="legacy"`` replays
    the pre-kernel path end to end — flat cofactor re-expansion and scalar
    per-term valuation — while the interned arm shares one minor-memoized
    engine between numerator and denominator and one cached vectorized
    valuation across the sweep.

    ``reduced=True`` swaps in the Miller OTA (the CI smoke workload: seconds
    become milliseconds, equivalence is still asserted end to end).
    """
    from ..circuits.ua741 import build_ua741_macro
    from ..symbolic.generation import symbolic_network_function

    epsilons = tuple(epsilons)
    if not epsilons:
        raise ValueError("epsilons must be non-empty")
    if reduced:
        name, (circuit, spec) = "miller-ota", build_miller_ota()
    else:
        name, (circuit, spec) = "ua741-macro", build_ua741_macro()
    reference = generate_reference(circuit, spec)

    def arm(kernel):
        start = time.perf_counter()
        transfer = symbolic_network_function(circuit, spec, kernel=kernel,
                                             max_terms=max_terms)
        sweep = [simplification_during_generation(
            circuit, spec, reference, epsilon=epsilon,
            transfer_function=transfer, kernel=kernel)
            for epsilon in epsilons]
        return transfer, sweep, time.perf_counter() - start

    legacy_tf, legacy_sweep, legacy_seconds = arm("legacy")
    interned_tf, interned_sweep, interned_seconds = arm("interned")

    identical = (
        _term_multiset(legacy_tf.numerator)
        == _term_multiset(interned_tf.numerator)
        and _term_multiset(legacy_tf.denominator)
        == _term_multiset(interned_tf.denominator)
        and all(
            _term_multiset(a.simplified.numerator)
            == _term_multiset(b.simplified.numerator)
            and _term_multiset(a.simplified.denominator)
            == _term_multiset(b.simplified.denominator)
            for a, b in zip(legacy_sweep, interned_sweep)
        )
    )
    stats = interned_tf.kernel_stats
    return SymbolicKernelResult(
        circuit_name=name,
        dimension=system_dimension(circuit),
        numerator_terms=len(interned_tf.numerator),
        denominator_terms=len(interned_tf.denominator),
        epsilons=epsilons,
        kept_terms=interned_sweep[len(epsilons) // 2].total_terms()[0],
        legacy_seconds=legacy_seconds,
        interned_seconds=interned_seconds,
        multisets_identical=identical,
        max_coefficient_deviation=_coefficient_deviation(legacy_tf,
                                                         interned_tf),
        distinct_terms=stats.distinct_terms,
        expanded_products=stats.expanded_products,
        minor_hit_rate=stats.hit_rate,
    )


# --------------------------------------------------------------------------- #
# Post-layout sparse-engine scaling (generator circuits, PR 6)
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class ScalingPoint:
    """One generator circuit's dense-vs-sparse sweep measurement."""

    family: str
    circuit_name: str
    dimension: int
    nnz: int
    dense_seconds: float
    sparse_seconds: float
    natural_fill: int
    ordered_fill: int
    max_norm_deviation: float

    @property
    def speedup(self) -> float:
        """Wall-clock ratio dense / sparse (>1: sparse wins)."""
        if self.sparse_seconds == 0.0:
            return float("inf")
        return self.dense_seconds / self.sparse_seconds

    def describe(self) -> str:
        """One line for the scaling table."""
        return (
            f"{self.family:>4} n={self.dimension:>5} nnz={self.nnz:>6}: "
            f"dense {self.dense_seconds * 1e3:8.1f} ms, "
            f"sparse {self.sparse_seconds * 1e3:8.1f} ms "
            f"({self.speedup:5.2f}x), fill {self.natural_fill:>6} natural "
            f"/ {self.ordered_fill:>6} ordered, "
            f"dev {self.max_norm_deviation:.2e}"
        )


@dataclasses.dataclass
class ScalingCurveResult:
    """Dense-vs-sparse sweep timings over the generator-circuit families.

    The post-layout scaling experiment: per family and size, one frequency
    sweep through the dense batched path and one through the ordered sparse
    refactorization path, with solution agreement (per-frequency deviation
    normalized by the dense solution norm) and symbolic fill-in under the
    natural versus fill-reducing column order.
    """

    points: List["ScalingPoint"]
    num_frequencies: int
    reduced: bool

    def family_points(self, family) -> List["ScalingPoint"]:
        """The curve of one family, in increasing dimension."""
        return sorted((p for p in self.points if p.family == family),
                      key=lambda p: p.dimension)

    def crossover_dimension(self, family="mesh") -> Optional[int]:
        """Smallest measured dimension where the sparse path wins."""
        for point in self.family_points(family):
            if point.sparse_seconds < point.dense_seconds:
                return point.dimension
        return None

    @property
    def max_deviation(self) -> float:
        """Worst dense/sparse deviation across every measured point."""
        return max(point.max_norm_deviation for point in self.points)

    def describe(self) -> str:
        """The scaling table plus per-family crossover dimensions."""
        lines = [point.describe() for point in self.points]
        for family in sorted({point.family for point in self.points}):
            crossover = self.crossover_dimension(family)
            where = f"n={crossover}" if crossover else "not reached"
            lines.append(f"{family:>4}: sparse crossover at {where}")
        return "\n".join(lines)


def _scaling_fill(system, s, column_order):
    """Symbolic fill-in of one factorization under ``column_order``."""
    from ..linalg.lu import sparse_lu

    return sparse_lu(system.assemble(s), column_order=column_order).fill_in


def run_scaling_curve(reduced=False, families=None, num_frequencies=8,
                      f_min=1.0, f_max=1e8,
                      targets=None) -> ScalingCurveResult:
    """Time dense vs ordered-sparse sweeps over the generator families.

    Every generator circuit is swept over ``num_frequencies`` log-spaced
    points twice — once through the dense batched path, once through the
    sparse refactorization path with the configured fill-reducing ordering —
    and the solutions compared.  ``reduced=True`` (CI smoke, also forced by
    ``REPRO_BENCH_REDUCED=1`` in :mod:`benchmarks.bench_scaling`) caps the
    curve at ~256 unknowns; the full curve reaches past 10³ where the dense
    stack's O(n³) factor cost dominates.

    Parameters
    ----------
    families:
        Optional iterable of family names (default: all of
        :data:`repro.circuits.generators.GENERATOR_FAMILIES`).
    targets:
        Optional explicit target dimensions, overriding the
        ``reduced``-selected curve (the tests use tiny targets).

    Returns
    -------
    ScalingCurveResult
    """
    from ..circuits.generators import GENERATOR_FAMILIES, build_generator
    from ..engine.sweep import SweepEngine
    from ..linalg.ordering import fill_reducing_order
    from ..mna.builder import build_mna_system

    if families is None:
        families = tuple(GENERATOR_FAMILIES)
    if targets is None:
        targets = (66, 130, 258) if reduced else (66, 130, 258, 514, 1026)
    frequencies = np.logspace(np.log10(f_min), np.log10(f_max),
                              num_frequencies)
    s = 2j * np.pi * frequencies
    points = []
    for family in families:
        for target in targets:
            circuit, _spec = build_generator(family, target, seed=target)
            system = build_mna_system(circuit)
            keys, _constant, _dynamic = system.merged_sparse_structure()

            start = time.perf_counter()
            dense = SweepEngine(system, method="dense").solve_sweep(
                s, system.rhs)
            dense_seconds = time.perf_counter() - start

            start = time.perf_counter()
            sparse = SweepEngine(system, method="sparse").solve_sweep(
                s, system.rhs)
            sparse_seconds = time.perf_counter() - start

            deviation = float(np.max(
                np.abs(dense - sparse)
                / np.linalg.norm(dense, axis=1, keepdims=True)))
            order = fill_reducing_order(system.dimension, keys)
            points.append(ScalingPoint(
                family=family,
                circuit_name=circuit.name,
                dimension=system.dimension,
                nnz=len(keys),
                dense_seconds=dense_seconds,
                sparse_seconds=sparse_seconds,
                natural_fill=_scaling_fill(
                    system, s[0], list(range(system.dimension))),
                ordered_fill=_scaling_fill(system, s[0], order),
                max_norm_deviation=deviation,
            ))
    return ScalingCurveResult(points=points,
                              num_frequencies=num_frequencies,
                              reduced=reduced)
