"""Runners for every experiment reproduced from the paper.

Each function builds the relevant circuit, runs the relevant algorithm and
returns a small result dataclass.  The benchmark suite calls these runners and
asserts on the *shape* of the results (who wins, which regions appear, how the
iteration cost falls); the examples print them; EXPERIMENTS.md records the
measured values next to the paper's.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.ac import ACAnalysis
from ..analysis.compare import BodeComparison, compare_responses
from ..analysis.sensitivity import screen_elements
from ..circuits.miller_ota import build_miller_ota
from ..circuits.ota import build_positive_feedback_ota
from ..circuits.rc_ladder import build_rc_ladder
from ..circuits.ua741 import build_ua741
from ..interpolation.adaptive import (
    AdaptiveOptions,
    AdaptiveResult,
    AdaptiveScalingInterpolator,
)
from ..interpolation.basic import InterpolationResult, interpolate_network_function
from ..interpolation.reference import NumericalReference, generate_reference
from ..interpolation.scaling import ScaleFactors, initial_scale_factors
from ..mna.builder import build_mna_system
from ..netlist.transform import to_admittance_form
from ..nodal.sampler import NetworkFunctionSampler
from ..symbolic.sdg import SDGResult, simplification_during_generation

__all__ = [
    "Table1Result",
    "Table2Result",
    "Fig2Result",
    "CpuReductionResult",
    "ScalingAblationResult",
    "BatchSweepResult",
    "SensitivityScreeningResult",
    "run_table1",
    "run_table2_table3",
    "run_fig2",
    "run_cpu_reduction",
    "run_scaling_ablation",
    "run_sdg_experiment",
    "run_batch_sweep",
    "run_sensitivity_screening",
]


# --------------------------------------------------------------------------- #
# Table 1 — positive-feedback OTA, unscaled vs frequency-scaled interpolation
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class Table1Result:
    """Reproduction of Table 1 (a: unscaled, b: frequency scale factor)."""

    unscaled_numerator: InterpolationResult
    unscaled_denominator: InterpolationResult
    scaled_numerator: InterpolationResult
    scaled_denominator: InterpolationResult
    frequency_scale: float
    degree_bound: int

    def unscaled_valid_count(self, kind="denominator") -> int:
        """Number of coefficients the unscaled interpolation can certify."""
        result = (self.unscaled_denominator if kind == "denominator"
                  else self.unscaled_numerator)
        return 0 if result.region is None else result.region.width

    def scaled_valid_count(self, kind="denominator") -> int:
        """Number of coefficients the scaled interpolation certifies."""
        result = (self.scaled_denominator if kind == "denominator"
                  else self.scaled_numerator)
        return 0 if result.region is None else result.region.width


def run_table1(frequency_scale=1e9, significant_digits=6) -> Table1Result:
    """Reproduce Table 1: OTA differential gain, unscaled vs scaled."""
    circuit, spec = build_positive_feedback_ota()
    unscaled = interpolate_network_function(
        circuit, spec, factors=ScaleFactors(),
        significant_digits=significant_digits)
    scaled = interpolate_network_function(
        circuit, spec, factors=ScaleFactors(frequency=frequency_scale),
        significant_digits=significant_digits)
    return Table1Result(
        unscaled_numerator=unscaled.numerator,
        unscaled_denominator=unscaled.denominator,
        scaled_numerator=scaled.numerator,
        scaled_denominator=scaled.denominator,
        frequency_scale=frequency_scale,
        degree_bound=unscaled.denominator.num_points - 1,
    )


# --------------------------------------------------------------------------- #
# Tables 2 & 3 — µA741 denominator, successive adaptive interpolations
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class Table2Result:
    """Reproduction of Tables 2 and 3: the adaptive iteration sequence."""

    adaptive: AdaptiveResult
    degree_bound: int
    initial_factors: ScaleFactors

    @property
    def iterations(self):
        """Per-interpolation records (factors, regions, new coefficients)."""
        return self.adaptive.iterations

    def region_sequence(self) -> List[Tuple[int, int]]:
        """``(start, end)`` of the valid region of every interpolation."""
        return [(record.region_start, record.region_end)
                for record in self.adaptive.iterations
                if record.region_start is not None]

    def covered_all(self) -> bool:
        """True when the union of regions covered every coefficient."""
        return self.adaptive.converged


def run_table2_table3(options=None) -> Table2Result:
    """Reproduce Tables 2–3: adaptive scaling on the µA741 denominator."""
    circuit, spec = build_ua741()
    admittance = to_admittance_form(circuit)
    sampler = NetworkFunctionSampler(admittance, spec)
    options = options or AdaptiveOptions()
    interpolator = AdaptiveScalingInterpolator(sampler, kind="denominator",
                                               options=options)
    result = interpolator.run()
    return Table2Result(
        adaptive=result,
        degree_bound=result.degree_bound,
        initial_factors=initial_scale_factors(admittance),
    )


# --------------------------------------------------------------------------- #
# Fig. 2 — Bode overlay of interpolated coefficients vs electrical simulator
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class Fig2Result:
    """Reproduction of Fig. 2: interpolated vs simulated Bode plot."""

    frequencies: np.ndarray
    interpolated_response: np.ndarray
    simulated_response: np.ndarray
    comparison: BodeComparison
    reference: NumericalReference

    def magnitude_db(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(interpolated, simulated)`` magnitude curves in dB."""
        tiny = np.finfo(float).tiny
        interp = 20.0 * np.log10(np.maximum(np.abs(self.interpolated_response), tiny))
        simulated = 20.0 * np.log10(np.maximum(np.abs(self.simulated_response), tiny))
        return interp, simulated


def run_fig2(f_min=1.0, f_max=1e8, points_per_decade=8,
             options=None) -> Fig2Result:
    """Reproduce Fig. 2: µA741 voltage-gain Bode plot, interpolation vs AC."""
    circuit, spec = build_ua741()
    reference = generate_reference(circuit, spec, options=options)
    decades = np.log10(f_max / f_min)
    frequencies = np.logspace(np.log10(f_min), np.log10(f_max),
                              int(decades * points_per_decade) + 1)
    interpolated = reference.frequency_response(frequencies)
    simulated = ACAnalysis(circuit, spec).frequency_response(frequencies)
    comparison = compare_responses(frequencies, simulated, interpolated)
    return Fig2Result(
        frequencies=frequencies,
        interpolated_response=interpolated,
        simulated_response=simulated,
        comparison=comparison,
        reference=reference,
    )


# --------------------------------------------------------------------------- #
# CPU-time reduction (Section 3.3) — per-iteration cost with / without Eq. 17
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class CpuReductionResult:
    """Per-iteration point counts and times, with and without deflation."""

    with_reduction_points: List[int]
    with_reduction_times: List[float]
    without_reduction_points: List[int]
    without_reduction_times: List[float]

    def total_points(self) -> Tuple[int, int]:
        """``(with, without)`` total interpolation points."""
        return sum(self.with_reduction_points), sum(self.without_reduction_points)

    def reduction_ratio(self) -> float:
        """Fraction of interpolation points saved by Eq. 17."""
        with_points, without_points = self.total_points()
        if without_points == 0:
            return 0.0
        return 1.0 - with_points / without_points

    def per_iteration_decreasing(self) -> bool:
        """True when the point count never increases across iterations (with Eq. 17)."""
        points = self.with_reduction_points
        return all(points[i + 1] <= points[i] for i in range(len(points) - 1))


def run_cpu_reduction(options=None) -> CpuReductionResult:
    """Reproduce the Section 3.3 claim: later iterations get cheaper with Eq. 17."""
    circuit, spec = build_ua741()
    admittance = to_admittance_form(circuit)

    def run(deflation):
        sampler = NetworkFunctionSampler(admittance, spec)
        base = options or AdaptiveOptions()
        opts = dataclasses.replace(base, deflation=deflation)
        result = AdaptiveScalingInterpolator(sampler, kind="denominator",
                                             options=opts).run()
        points = [record.num_points for record in result.iterations]
        times = [record.elapsed_seconds for record in result.iterations]
        return points, times

    with_points, with_times = run(True)
    without_points, without_times = run(False)
    return CpuReductionResult(
        with_reduction_points=with_points,
        with_reduction_times=with_times,
        without_reduction_points=without_points,
        without_reduction_times=without_times,
    )


# --------------------------------------------------------------------------- #
# Ablations — simultaneous vs single-factor scaling, adaptive vs fixed grid
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class ScalingAblationResult:
    """Ablation of the scale-factor strategy on the µA741 denominator."""

    simultaneous: AdaptiveResult
    single_factor: AdaptiveResult
    simultaneous_max_factor: float
    single_factor_max_factor: float
    fixed_grid_interpolations: Optional[int]
    fixed_grid_covered: Optional[int]
    degree_bound: int


def run_scaling_ablation(fixed_grid_decades=4.0, options=None) -> ScalingAblationResult:
    """Compare simultaneous f/g scaling, single-factor scaling and a fixed grid."""
    circuit, spec = build_ua741()
    admittance = to_admittance_form(circuit)
    base = options or AdaptiveOptions()

    def run(single_scale):
        sampler = NetworkFunctionSampler(admittance, spec)
        opts = dataclasses.replace(base, single_scale=single_scale)
        result = AdaptiveScalingInterpolator(sampler, kind="denominator",
                                             options=opts).run()
        max_factor = max(record.factors.max_factor()
                         for record in result.iterations)
        return result, max_factor

    simultaneous, simultaneous_max = run(False)
    single, single_max = run(True)

    # Fixed-grid strategy of Section 3.1: interpolate at log-spaced per-power
    # ratios and count how many interpolations are needed to cover everything.
    sampler = NetworkFunctionSampler(admittance, spec)
    degree_bound = sampler.max_polynomial_degree()
    initial = initial_scale_factors(admittance)
    covered: set = set()
    grid_interpolations = 0
    from ..interpolation.basic import interpolate_polynomial

    ratio = 1.0
    max_grid = 12
    while len(covered) <= degree_bound and grid_interpolations < max_grid:
        factors = initial.with_ratio_applied(10.0 ** (fixed_grid_decades *
                                                      grid_interpolations))
        result = interpolate_polynomial(sampler, "denominator", factors,
                                        significant_digits=base.significant_digits)
        grid_interpolations += 1
        if result.region is not None:
            covered.update(result.region.indices)

    return ScalingAblationResult(
        simultaneous=simultaneous,
        single_factor=single,
        simultaneous_max_factor=simultaneous_max,
        single_factor_max_factor=single_max,
        fixed_grid_interpolations=grid_interpolations,
        fixed_grid_covered=len([i for i in covered if i <= degree_bound]),
        degree_bound=degree_bound,
    )


# --------------------------------------------------------------------------- #
# Batched frequency sweeps — per-point vs batch-engine evaluation
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class BatchSweepResult:
    """Per-point vs batched sweep of one circuit's network function."""

    circuit_name: str
    dimension: int
    num_points: int
    pointwise_seconds: float
    batched_seconds: float
    max_relative_deviation: float
    bitwise_identical: bool

    @property
    def speedup(self) -> float:
        """Wall-clock ratio per-point / batched."""
        if self.batched_seconds == 0.0:
            return float("inf")
        return self.pointwise_seconds / self.batched_seconds

    def describe(self) -> str:
        """One line for the experiment table."""
        return (
            f"{self.circuit_name:>12} (M={self.dimension:>3}): "
            f"per-point {self.pointwise_seconds * 1e3:7.1f} ms, "
            f"batched {self.batched_seconds * 1e3:7.1f} ms, "
            f"speedup {self.speedup:4.1f}x, "
            f"max rel dev {self.max_relative_deviation:.2e}"
        )


def _default_batch_sweep_circuits():
    return [
        ("rc_ladder_12", build_rc_ladder(12)),
        ("rc_ladder_24", build_rc_ladder(24)),
        ("rc_ladder_48", build_rc_ladder(48)),
        ("ua741", build_ua741()),
    ]


def run_batch_sweep(num_points=200, circuits=None, method="auto",
                    f_min=1.0, f_max=1e8, repeats=3) -> List[BatchSweepResult]:
    """Compare per-point and batched sweeps over a set of circuits.

    Every circuit is swept over ``num_points`` log-spaced frequencies twice —
    once through the original one-matrix-at-a-time path, once through the
    batch engine — taking the best wall-clock of ``repeats`` runs for each
    path, and the transfer values are compared point by point.

    Parameters
    ----------
    circuits:
        Optional list of ``(name, (circuit, spec))`` pairs; defaults to the
        RC ladders with 12 / 24 / 48 stages plus the µA741 macro.
    """
    if circuits is None:
        circuits = _default_batch_sweep_circuits()
    frequencies = np.logspace(np.log10(f_min), np.log10(f_max), num_points)
    points = (2j * np.pi * frequencies).tolist()
    results = []
    for name, (circuit, spec) in circuits:
        admittance = to_admittance_form(circuit)
        pointwise_seconds = batched_seconds = float("inf")
        for __ in range(repeats):
            # Fresh samplers per repeat: the batched timing then always pays
            # the one-time structure / factorization-pattern setup, so the
            # reported speedup is a cold-sweep number, not a warm-cache one.
            sampler = NetworkFunctionSampler(admittance, spec, method=method)
            start = time.perf_counter()
            pointwise = sampler.sample_many(points, batch=False)
            pointwise_seconds = min(pointwise_seconds,
                                    time.perf_counter() - start)
            sampler = NetworkFunctionSampler(admittance, spec, method=method)
            start = time.perf_counter()
            batched = sampler.sample_many(points, batch=True)
            batched_seconds = min(batched_seconds,
                                  time.perf_counter() - start)
        reference = np.array([sample.transfer() for sample in pointwise])
        values = np.array([sample.transfer() for sample in batched])
        deviation = float(np.max(
            np.abs(values - reference)
            / np.maximum(np.abs(reference), np.finfo(float).tiny)
        ))
        bitwise = all(
            p.numerator == b.numerator and p.denominator == b.denominator
            for p, b in zip(pointwise, batched)
        )
        results.append(BatchSweepResult(
            circuit_name=name,
            dimension=sampler.dimension,
            num_points=num_points,
            pointwise_seconds=pointwise_seconds,
            batched_seconds=batched_seconds,
            max_relative_deviation=deviation,
            bitwise_identical=bitwise,
        ))
    return results


# --------------------------------------------------------------------------- #
# SDG error control (Eq. 3) on the Miller OTA
# --------------------------------------------------------------------------- #


def run_sdg_experiment(epsilon=0.01) -> SDGResult:
    """Exercise the SDG error control against a generated reference."""
    circuit, spec = build_miller_ota()
    reference = generate_reference(circuit, spec)
    return simplification_during_generation(circuit, spec, reference,
                                            epsilon=epsilon)


# --------------------------------------------------------------------------- #
# Rank-1 sensitivity screening vs brute-force rebuild (PR 2)
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class SensitivityScreeningResult:
    """Rank-1 vs rebuild element screening of one circuit."""

    circuit_name: str
    dimension: int
    num_elements: int
    num_frequencies: int
    rank1_seconds: float
    rebuild_seconds: float
    #: Worst relative deviation between the two engines' removal /
    #: perturbation responses, measured against the transfer-function scale
    #: ``max(|response|, |baseline|)`` at each frequency.
    max_relative_deviation: float
    #: True when both engines sort the elements into the same removal order.
    ranking_identical: bool
    #: True when both engines flag the same elements as singular-on-removal.
    singular_sets_identical: bool

    @property
    def speedup(self) -> float:
        """Wall-clock ratio rebuild / rank-1."""
        if self.rank1_seconds == 0.0:
            return float("inf")
        return self.rebuild_seconds / self.rank1_seconds

    def describe(self) -> str:
        """One line for the experiment table."""
        return (
            f"{self.circuit_name:>12} (n={self.dimension:>3}, "
            f"E={self.num_elements:>3}, F={self.num_frequencies:>3}): "
            f"rebuild {self.rebuild_seconds * 1e3:8.1f} ms, "
            f"rank-1 {self.rank1_seconds * 1e3:7.1f} ms, "
            f"speedup {self.speedup:5.1f}x, "
            f"max rel dev {self.max_relative_deviation:.2e}, "
            f"ranking {'==' if self.ranking_identical else '!='}"
        )


def _screening_deviation(rank1, rebuild):
    """Worst response deviation between two ScreeningResults (same elements).

    Each removal / perturbation response is compared against the rebuild
    oracle relative to ``max(|response|, |baseline|)`` per frequency — the
    transfer-function scale that also normalizes the influence figures.
    Singular (``None``) responses must agree between the engines; a
    ``None`` mismatch counts as infinite deviation.
    """
    tiny = np.finfo(float).tiny
    worst = 0.0
    for ours, oracle in zip(rank1.screenings, rebuild.screenings):
        for candidate, reference in (
            (ours.removal_response, oracle.removal_response),
            (ours.perturbed_response, oracle.perturbed_response),
        ):
            if (candidate is None) != (reference is None):
                return float("inf")
            if candidate is None:
                continue
            scale = np.maximum(
                np.maximum(np.abs(reference), np.abs(rebuild.baseline)), tiny)
            worst = max(worst, float(np.max(
                np.abs(candidate - reference) / scale)))
    return worst


def run_sensitivity_screening(num_frequencies=25, circuits=None,
                              perturbation=0.01, f_min=1.0, f_max=1e8,
                              repeats=3) -> List[SensitivityScreeningResult]:
    """Compare rank-1 and rebuild element screening over a set of circuits.

    Every circuit's full element set is screened over ``num_frequencies``
    log-spaced sample frequencies twice — once through the Sherman–Morrison
    engine on the cached baseline factorization, once through the brute-force
    rebuild path — taking the best wall-clock of ``repeats`` runs for each,
    and the removal / perturbation responses, influence rankings and
    singular-element sets are compared.

    Parameters
    ----------
    circuits:
        Optional list of ``(name, (circuit, spec))`` pairs; defaults to the
        µA741 macro and the Miller OTA.
    """
    if circuits is None:
        circuits = [("ua741", build_ua741()), ("miller_ota", build_miller_ota())]
    frequencies = np.logspace(np.log10(f_min), np.log10(f_max),
                              num_frequencies)
    results = []
    for name, (circuit, spec) in circuits:
        dimension = build_mna_system(circuit).dimension
        rank1_seconds = rebuild_seconds = float("inf")
        rank1 = rebuild = None
        for __ in range(repeats):
            start = time.perf_counter()
            rank1 = screen_elements(circuit, spec, frequencies,
                                    perturbation=perturbation, method="rank1")
            rank1_seconds = min(rank1_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            rebuild = screen_elements(circuit, spec, frequencies,
                                      perturbation=perturbation,
                                      method="rebuild")
            rebuild_seconds = min(rebuild_seconds,
                                  time.perf_counter() - start)
        ranking = ([i.name for i in rank1.influences()]
                   == [i.name for i in rebuild.influences()])
        singular = (
            {s.name for s in rank1.screenings if s.removal_response is None}
            == {s.name for s in rebuild.screenings
                if s.removal_response is None}
        )
        results.append(SensitivityScreeningResult(
            circuit_name=name,
            dimension=dimension,
            num_elements=len(rank1.screenings),
            num_frequencies=num_frequencies,
            rank1_seconds=rank1_seconds,
            rebuild_seconds=rebuild_seconds,
            max_relative_deviation=_screening_deviation(rank1, rebuild),
            ranking_identical=ranking,
            singular_sets_identical=singular,
        ))
    return results
