"""Experiment harness and table formatting for the paper reproduction.

:mod:`repro.reporting.experiments` contains one runner per experiment of the
paper's evaluation (Tables 1–3, Fig. 2, the CPU-time claim and the ablations
listed in DESIGN.md); the benchmark suite asserts on the runners' results and
the examples print them.  :mod:`repro.reporting.tables` renders the results in
layouts mirroring the paper's tables.
"""

from .experiments import (
    Table1Result,
    Table2Result,
    Fig2Result,
    CpuReductionResult,
    ScalingAblationResult,
    run_table1,
    run_table2_table3,
    run_fig2,
    run_cpu_reduction,
    run_scaling_ablation,
    run_sdg_experiment,
)
from .tables import (
    format_table1,
    format_adaptive_iterations,
    format_bode_comparison,
    format_coefficient_table,
    format_sweep_report,
)

__all__ = [
    "Table1Result",
    "Table2Result",
    "Fig2Result",
    "CpuReductionResult",
    "ScalingAblationResult",
    "run_table1",
    "run_table2_table3",
    "run_fig2",
    "run_cpu_reduction",
    "run_scaling_ablation",
    "run_sdg_experiment",
    "format_table1",
    "format_adaptive_iterations",
    "format_bode_comparison",
    "format_coefficient_table",
    "format_sweep_report",
]
