"""Direct numeric AC analysis of a circuit.

:class:`ACAnalysis` performs the classical small-signal frequency sweep: the
full MNA system is assembled once, solved at every frequency with the
circuit's own source values as excitation, and the requested output voltage is
recorded.  This is what a commercial electrical simulator's ``.AC`` analysis
does and is the reference curve of Fig. 2.  Whole-grid sweeps route through
the batched engine of :func:`repro.mna.solve.ac_sweep` (matrix parts
assembled once, factorization structure shared across points).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import FormulationError
from ..mna.builder import build_mna_system
from ..mna.solve import _factor, ac_sweep as mna_ac_sweep
from ..nodal.reduce import TransferSpec

__all__ = ["ACAnalysis", "ac_sweep"]


class ACAnalysis:
    """Reusable AC analysis of one circuit.

    Parameters
    ----------
    circuit:
        Any circuit supported by the MNA builder (no admittance-form
        restriction).
    output:
        Node name, ``(positive, negative)`` pair, or a
        :class:`~repro.nodal.reduce.TransferSpec` (its output is used; its
        sources are assumed to carry their drive values already).
    method:
        LU backend selection (``"auto"``, ``"dense"``, ``"sparse"``).
    session:
        Optional :class:`~repro.engine.session.AnalysisSession`.  When given,
        the MNA system comes from the session cache and whole-grid sweeps
        reuse the session's kept factorizations — repeating a grid (or
        running one after a screening pass factored it) skips the O(n³)
        work.  Results are bit-identical to the session-less path: both
        analyse the *snapshot* taken at construction (the circuit's content
        hash is pinned here), so mutating the circuit in place afterwards
        cannot mix old and new artifacts.
    """

    def __init__(self, circuit, output, method="auto", session=None):
        self.circuit = circuit
        if isinstance(output, TransferSpec):
            positive, negative = output.output_nodes()
            self.output = positive if negative is None else (positive, negative)
        else:
            self.output = output
        self.method = method
        self._session = session
        if session is not None:
            self._fingerprint = session.fingerprint(circuit)
            self.system = session.mna_system(circuit,
                                             fingerprint=self._fingerprint)
        else:
            self._fingerprint = None
            self.system = build_mna_system(circuit)
        #: Number of sweep points LU-processed so far.  Batched sweeps count
        #: one per point even when the sparse path served most points by
        #: cheap structure-reusing refactorization.
        self.factorization_count = 0

    def value_at(self, s) -> complex:
        """Output voltage (per the circuit's own excitation) at complex ``s``."""
        matrix = self.system.assemble(s)
        factorization = _factor(matrix, self.method)
        self.factorization_count += 1
        solution = factorization.solve(self.system.rhs)
        if isinstance(self.output, (tuple, list)):
            positive, negative = self.output
            return (self.system.node_voltage(solution, positive)
                    - self.system.node_voltage(solution, negative))
        return self.system.node_voltage(solution, self.output)

    def frequency_response(self, frequencies) -> np.ndarray:
        """Complex output over an array of frequencies in hertz (batched)."""
        frequencies = np.asarray(frequencies, dtype=float)
        s = 2j * math.pi * frequencies
        if self._session is not None:
            misses_before = self._session.misses
            sweep = self._session.factored_sweep(
                self.circuit, s, method=self.method,
                system=self.system, fingerprint=self._fingerprint)
            solutions = sweep.solve(self.system.rhs)
            # A pure cache hit performed no LU work — only count points the
            # session actually had to factor.
            if self._session.misses != misses_before:
                self.factorization_count += len(frequencies)
        else:
            solutions = mna_ac_sweep(self.system, s, method=self.method)
            self.factorization_count += len(frequencies)
        if isinstance(self.output, (tuple, list)):
            positive, negative = self.output
            return (self.system.node_voltages(solutions, positive)
                    - self.system.node_voltages(solutions, negative))
        return self.system.node_voltages(solutions, self.output)

    def bode(self, frequencies) -> Tuple[np.ndarray, np.ndarray]:
        """``(magnitude_db, phase_deg)`` over ``frequencies`` (hertz)."""
        response = self.frequency_response(frequencies)
        magnitude = np.abs(response)
        magnitude[magnitude == 0.0] = np.finfo(float).tiny
        phase = np.degrees(np.unwrap(np.angle(response)))
        return 20.0 * np.log10(magnitude), phase


def ac_sweep(circuit, output, frequencies, method="auto") -> np.ndarray:
    """One-shot complex frequency sweep (see :class:`ACAnalysis`)."""
    return ACAnalysis(circuit, output, method=method).frequency_response(frequencies)
