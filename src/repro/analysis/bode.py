"""Bode-plot utilities: magnitude / phase extraction and stability margins."""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BodeData",
    "bode_from_response",
    "bode_sweep",
    "unity_gain_crossover",
    "phase_margin_deg",
    "gain_margin_db",
]


@dataclasses.dataclass
class BodeData:
    """Magnitude / phase data over a frequency grid."""

    frequencies: np.ndarray
    magnitude_db: np.ndarray
    phase_deg: np.ndarray

    def __post_init__(self):
        self.frequencies = np.asarray(self.frequencies, dtype=float)
        self.magnitude_db = np.asarray(self.magnitude_db, dtype=float)
        self.phase_deg = np.asarray(self.phase_deg, dtype=float)

    def at(self, frequency) -> Tuple[float, float]:
        """Log-interpolated ``(magnitude_db, phase_deg)`` at ``frequency``."""
        log_f = math.log10(frequency)
        log_grid = np.log10(self.frequencies)
        magnitude = float(np.interp(log_f, log_grid, self.magnitude_db))
        phase = float(np.interp(log_f, log_grid, self.phase_deg))
        return magnitude, phase


def bode_from_response(frequencies, response) -> BodeData:
    """Build :class:`BodeData` from a complex frequency response."""
    response = np.asarray(response, dtype=complex)
    magnitude = np.abs(response)
    magnitude[magnitude == 0.0] = np.finfo(float).tiny
    phase = np.degrees(np.unwrap(np.angle(response)))
    return BodeData(
        frequencies=np.asarray(frequencies, dtype=float),
        magnitude_db=20.0 * np.log10(magnitude),
        phase_deg=phase,
    )


def bode_sweep(circuit, output, frequencies, method="auto") -> BodeData:
    """Batched AC sweep of ``circuit`` straight to :class:`BodeData`.

    Convenience wrapper: the MNA system is assembled once and the whole grid
    is solved through the batched sweep engine
    (:func:`~repro.analysis.ac.ac_sweep`) before the magnitude / phase
    extraction.
    """
    from .ac import ac_sweep

    return bode_from_response(
        frequencies, ac_sweep(circuit, output, frequencies, method=method)
    )


def unity_gain_crossover(data: BodeData) -> Optional[float]:
    """Frequency where the magnitude crosses 0 dB (None if it never does)."""
    magnitude = data.magnitude_db
    for index in range(len(magnitude) - 1):
        if magnitude[index] >= 0.0 and magnitude[index + 1] < 0.0:
            x0 = math.log10(data.frequencies[index])
            x1 = math.log10(data.frequencies[index + 1])
            y0, y1 = magnitude[index], magnitude[index + 1]
            if y0 == y1:
                return data.frequencies[index]
            t = (0.0 - y0) / (y1 - y0)
            return 10.0 ** (x0 + t * (x1 - x0))
    return None


def phase_margin_deg(data: BodeData) -> Optional[float]:
    """Phase margin: ``180° + phase`` at the unity-gain crossover."""
    crossover = unity_gain_crossover(data)
    if crossover is None:
        return None
    __, phase = data.at(crossover)
    return 180.0 + phase


def gain_margin_db(data: BodeData) -> Optional[float]:
    """Gain margin: ``-magnitude`` where the phase crosses −180°."""
    phase = data.phase_deg
    for index in range(len(phase) - 1):
        if (phase[index] + 180.0) * (phase[index + 1] + 180.0) <= 0.0:
            if phase[index] == phase[index + 1]:
                magnitude, __ = data.at(data.frequencies[index])
                return -magnitude
            t = (-180.0 - phase[index]) / (phase[index + 1] - phase[index])
            log_f = (math.log10(data.frequencies[index])
                     + t * (math.log10(data.frequencies[index + 1])
                            - math.log10(data.frequencies[index])))
            magnitude, __ = data.at(10.0**log_f)
            return -magnitude
    return None
