"""Comparison of interpolated and simulated frequency responses (Fig. 2).

The paper's Fig. 2 demonstrates the accuracy of the adaptive-scaling
coefficients by overlaying their Bode plot with an electrical simulator's
output and observing "perfect matching".  :func:`compare_responses` quantifies
that overlay: maximum magnitude error in dB, maximum phase error in degrees,
and worst relative complex error.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

__all__ = ["BodeComparison", "compare_responses"]


@dataclasses.dataclass
class BodeComparison:
    """Error metrics between two complex frequency responses on the same grid."""

    frequencies: np.ndarray
    max_magnitude_error_db: float
    max_phase_error_deg: float
    max_relative_error: float
    rms_magnitude_error_db: float

    def matches(self, magnitude_tolerance_db=0.1, phase_tolerance_deg=1.0):
        """True when both error metrics stay inside the given tolerances."""
        return (self.max_magnitude_error_db <= magnitude_tolerance_db
                and self.max_phase_error_deg <= phase_tolerance_deg)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"max |Δmag| {self.max_magnitude_error_db:.3g} dB, "
            f"max |Δphase| {self.max_phase_error_deg:.3g}°, "
            f"max relative error {self.max_relative_error:.3g}"
        )


def compare_responses(frequencies, reference_response,
                      candidate_response) -> BodeComparison:
    """Compare two complex responses sampled on the same frequency grid.

    ``reference_response`` is typically the direct AC-simulation curve and
    ``candidate_response`` the interpolated-coefficient curve.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    reference = np.asarray(reference_response, dtype=complex)
    candidate = np.asarray(candidate_response, dtype=complex)
    if reference.shape != candidate.shape or reference.shape != frequencies.shape:
        raise ValueError("responses and frequency grid must have the same shape")

    tiny = np.finfo(float).tiny
    reference_magnitude = np.maximum(np.abs(reference), tiny)
    candidate_magnitude = np.maximum(np.abs(candidate), tiny)
    magnitude_error_db = np.abs(
        20.0 * np.log10(candidate_magnitude) - 20.0 * np.log10(reference_magnitude)
    )

    reference_phase = np.degrees(np.unwrap(np.angle(reference)))
    candidate_phase = np.degrees(np.unwrap(np.angle(candidate)))
    phase_error = np.abs(candidate_phase - reference_phase)

    # Symmetric relative error with a floored denominator: a reference that
    # passes exactly through zero (a deep notch sample, or a response that is
    # identically zero at DC) must not blow the metric up to 1/tiny — the
    # error is measured against whichever curve is larger at that point,
    # matching the screening benchmark's max(|response|, |baseline|) scale.
    scale = np.maximum(np.maximum(np.abs(reference), np.abs(candidate)), tiny)
    relative_error = np.abs(candidate - reference) / scale

    return BodeComparison(
        frequencies=frequencies,
        max_magnitude_error_db=float(np.max(magnitude_error_db)),
        max_phase_error_deg=float(np.max(phase_error)),
        max_relative_error=float(np.max(relative_error)),
        rms_magnitude_error_db=float(np.sqrt(np.mean(magnitude_error_db**2))),
    )
