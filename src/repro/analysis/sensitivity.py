"""Element influence screening on cached baseline factorizations.

For SBG-style circuit reduction one needs to know how much each element
contributes to the network function around the design point.  The screening
measures, per element, the worst-case relative change of the transfer function
over a set of sample frequencies when the element is removed and when its
value is perturbed.

Two engines compute those responses:

``method="rank1"`` (default)
    Every screened element stamps the MNA matrix as a rank-1 outer product
    ``Δy(s)·u·vᵀ`` (:meth:`repro.mna.builder.MnaSystem.element_stamp`), so
    its removal (``Δy = −y``) and perturbation (``Δy = p·y``) responses follow
    from the *baseline* factorization via the Sherman–Morrison formula
    (:mod:`repro.linalg.rank1`) in O(n²) per element — the baseline is
    factored once per frequency batch (:func:`repro.mna.solve.ac_factor_sweep`)
    and all elements are screened against the cached factors, vectorized over
    both the frequency batch and blocks of elements.  A vanishing
    Sherman–Morrison denominator (``det(A')/det(A) → 0``) marks a removal
    that makes the circuit singular: the element is essential.

``method="rebuild"``
    The original brute-force path: rebuild the circuit and run a full
    :class:`~repro.analysis.ac.ACAnalysis` sweep per candidate, i.e. ``2·E·F``
    complete assemblies + factorizations.  Kept as the equivalence oracle for
    the rank-1 engine (see ``tests/test_sensitivity.py`` and
    ``benchmarks/bench_sensitivity.py``).

Both engines produce the ranking consumed by :mod:`repro.symbolic.sbg`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import FormulationError, SingularMatrixError
from ..mna.builder import build_mna_system
from ..mna.solve import ac_factor_sweep
from ..netlist.elements import Capacitor, Conductor, GROUND, Resistor, VCCS
from ..nodal.reduce import TransferSpec
from .ac import ACAnalysis

__all__ = ["ElementInfluence", "ElementScreening", "ScreeningResult",
           "element_sensitivities", "screen_elements"]

#: Complex entries per ``(K, n, E)`` block of solved incidence columns; blocks
#: of elements are screened at a time so memory stays bounded (~64 MB) for
#: large circuits and dense frequency grids.
_SCREEN_CHUNK_ELEMENTS = 4_000_000

#: Sherman–Morrison error amplification goes as ``1/|denominator|``
#: (``denominator = det(A')/det(A)``), so elements whose update drives the
#: baseline matrix within this relative distance of singularity are re-screened
#: exactly through the rebuild path instead.  In practice only a handful of
#: near-essential elements trip this, keeping the rank-1 engine's responses
#: within ~1e-10 of the rebuild oracle for everything it answers itself.
_RANK1_EXACT_FALLBACK = 1e-6


@dataclasses.dataclass
class ElementInfluence:
    """Worst-case relative transfer-function change caused by one element."""

    name: str
    removal_error: float
    relative_perturbation_gain: float

    def negligible(self, threshold):
        """True when removing the element changes the response less than ``threshold``."""
        return self.removal_error < threshold


@dataclasses.dataclass
class ElementScreening:
    """Removal / perturbation responses of one screened element.

    A response of ``None`` means the corresponding modified circuit is
    singular (the removal disconnected the circuit, or the perturbed system
    could not be formulated) — the element is reported with infinite
    influence.
    """

    name: str
    removal_response: Optional[np.ndarray]
    perturbed_response: Optional[np.ndarray]


@dataclasses.dataclass
class ScreeningResult:
    """Baseline response plus per-element screening responses.

    ``screenings`` preserves the input element order; :meth:`influences`
    derives the SBG ranking from it.
    """

    frequencies: np.ndarray
    baseline: np.ndarray
    screenings: List[ElementScreening]
    perturbation: float
    method: str

    def influences(self) -> List[ElementInfluence]:
        """Per-element influence figures, least influential first."""
        influences = []
        for screening in self.screenings:
            if screening.removal_response is None:
                removal_error = math.inf
            else:
                removal_error = _relative_error(self.baseline,
                                                screening.removal_response)
            if screening.perturbed_response is None:
                sensitivity = math.inf
            else:
                sensitivity = (_relative_error(self.baseline,
                                               screening.perturbed_response)
                               / self.perturbation)
            influences.append(ElementInfluence(
                name=screening.name,
                removal_error=removal_error,
                relative_perturbation_gain=sensitivity,
            ))
        influences.sort(key=lambda item: item.removal_error)
        return influences


def _relative_error(reference, candidate):
    reference = np.asarray(reference, dtype=complex)
    candidate = np.asarray(candidate, dtype=complex)
    scale = np.maximum(np.abs(reference), np.finfo(float).tiny)
    return float(np.max(np.abs(candidate - reference) / scale))


def _normalize_output(output):
    """Resolve a TransferSpec / pair / node name into ACAnalysis's output form."""
    if isinstance(output, TransferSpec):
        positive, negative = output.output_nodes()
        return positive if negative is None else (positive, negative)
    return output


def _output_terms(system, output):
    """``(solution index, sign)`` pairs whose weighted sum is the output."""
    if isinstance(output, (tuple, list)):
        positive, negative = output
        return [(system.node_index(node), sign)
                for node, sign in ((positive, 1.0), (negative, -1.0))
                if node != GROUND]
    if output == GROUND:
        return []
    return [(system.node_index(output), 1.0)]


def _project_output(terms, solutions):
    """Output voltage over a ``(K, n)`` or ``(K, n, E)`` solution stack."""
    shape = solutions.shape[:1] + solutions.shape[2:]
    result = np.zeros(shape, dtype=complex)
    for index, sign in terms:
        result += sign * solutions[:, index]
    return result


def _screen_rebuild_one(circuit, output, frequencies, name,
                        perturbation) -> ElementScreening:
    """Brute-force screening of one element: rebuild + full AC sweep.

    Only the errors that genuinely mean "this modified circuit cannot be
    solved" — a singular matrix or an unformulatable system — are treated as
    infinite influence; anything else (unknown element names, unscalable
    element types, plain bugs) propagates to the caller.
    """
    removed = circuit.with_element_removed(name)
    try:
        removal_response = ACAnalysis(removed, output).frequency_response(
            frequencies)
    except (FormulationError, SingularMatrixError):
        removal_response = None
    perturbed = circuit.with_value_scaled(name, 1.0 + perturbation)
    try:
        perturbed_response = ACAnalysis(perturbed, output).frequency_response(
            frequencies)
    except (FormulationError, SingularMatrixError):
        perturbed_response = None
    return ElementScreening(name=name, removal_response=removal_response,
                            perturbed_response=perturbed_response)


def _screen_rank1(circuit, output, frequencies, names,
                  perturbation, session=None,
                  fingerprint=None) -> ScreeningResult:
    """Screen every element against the cached baseline factorization."""
    s = 2j * math.pi * frequencies
    if session is not None:
        if fingerprint is None:
            fingerprint = session.fingerprint(circuit)
        system = session.mna_system(circuit, fingerprint=fingerprint)
        sweep = session.factored_sweep(circuit, s, system=system,
                                       fingerprint=fingerprint)
    else:
        system = build_mna_system(circuit)
        sweep = ac_factor_sweep(system, s)
    x0 = sweep.solve(system.rhs)
    terms = _output_terms(system, output)
    baseline = _project_output(terms, x0)

    stamps = {}
    fallbacks = set()
    for name in names:
        try:
            stamps[name] = system.element_stamp(name)
        except FormulationError:
            # Element without a rank-1 admittance stamp (e.g. an explicitly
            # requested source): fall back to the rebuild path for it.
            fallbacks.add(name)

    screenings: Dict[str, ElementScreening] = {}
    stamped_names = [name for name in names if name in stamps]
    num_points, dimension = x0.shape
    block_size = max(1, _SCREEN_CHUNK_ELEMENTS
                     // max(1, num_points * dimension))
    for start in range(0, len(stamped_names), block_size):
        block = stamped_names[start:start + block_size]
        incidence_u = np.column_stack([stamps[name].u for name in block])
        incidence_v = np.column_stack([stamps[name].v for name in block])
        conductances = np.array([stamps[name].conductance for name in block])
        capacitances = np.array([stamps[name].capacitance for name in block])

        solved_u = sweep.solve_columns(incidence_u)          # (K, n, E)
        admittances = (conductances[None, :]
                       + s[:, None] * capacitances[None, :])  # (K, E)
        # Scaling an element *value* by (1+p) scales its admittance by (1+p)
        # for conductors / capacitors / VCCS, but a resistor value is the
        # reciprocal of its stamped conductance: G -> G/(1+p).
        perturbation_scales = np.array([
            (1.0 / (1.0 + perturbation) - 1.0)
            if isinstance(circuit[name], Resistor) else perturbation
            for name in block
        ])
        v_dot_x0 = x0 @ incidence_v                           # (K, E)
        v_dot_w = np.einsum("kne,ne->ke", solved_u, incidence_v)
        output_w = _project_output(terms, solved_u)           # (K, E)

        responses = {}
        near_singular = np.zeros(len(block), dtype=bool)
        for kind, scale in (("removal", -1.0),
                            ("perturbed", perturbation_scales)):
            delta = scale * admittances
            t = delta * v_dot_w
            denominator = 1.0 + t
            risky = (np.abs(denominator)
                     <= _RANK1_EXACT_FALLBACK * np.maximum(1.0, np.abs(t)))
            near_singular |= risky.any(axis=0)
            coefficient = (delta * v_dot_x0
                           / np.where(risky, 1.0, denominator))
            responses[kind] = baseline[:, None] - coefficient * output_w
        for position, name in enumerate(block):
            if near_singular[position]:
                # The update (nearly) annihilates det(A): the Sherman–Morrison
                # correction is unreliable here, so answer exactly — singular
                # removals come back as None (infinite influence), matching
                # what the rebuild oracle reports.
                screenings[name] = _screen_rebuild_one(
                    circuit, output, frequencies, name, perturbation)
            else:
                screenings[name] = ElementScreening(
                    name=name,
                    removal_response=responses["removal"][:, position],
                    perturbed_response=responses["perturbed"][:, position],
                )

    for name in fallbacks:
        screenings[name] = _screen_rebuild_one(circuit, output, frequencies,
                                               name, perturbation)

    return ScreeningResult(
        frequencies=frequencies,
        baseline=baseline,
        screenings=[screenings[name] for name in names],
        perturbation=perturbation,
        method="rank1",
    )


def screen_elements(circuit, output, frequencies, elements=None,
                    perturbation=0.01, method="rank1",
                    session=None) -> ScreeningResult:
    """Compute removal / perturbation responses for every candidate element.

    Parameters
    ----------
    circuit:
        The circuit at its design point.
    output:
        Output node / ``(positive, negative)`` pair /
        :class:`~repro.nodal.reduce.TransferSpec`.
    frequencies:
        Sample frequencies in hertz.
    elements:
        Restrict the screening to these element names (default: every passive
        admittance element and VCCS).
    perturbation:
        Relative value perturbation for the small-signal sensitivity figure.
    method:
        ``"rank1"`` (Sherman–Morrison on the cached baseline factorization,
        default) or ``"rebuild"`` (full re-assembly + sweep per element, the
        equivalence oracle).
    session:
        Optional :class:`~repro.engine.session.AnalysisSession` — the whole
        :class:`ScreeningResult` is then memoized on circuit content, output,
        grid and parameters (and the rank-1 engine takes the MNA system and
        baseline sweep factors from the same cache), so repeated screenings
        of unchanged content return the stored answer outright.

    Returns
    -------
    ScreeningResult
    """
    if session is not None:
        return session.screening(circuit, output, frequencies,
                                 elements=elements, perturbation=perturbation,
                                 method=method)
    return _screen(circuit, output, frequencies, elements, perturbation,
                   method)


def _screen(circuit, output, frequencies, elements, perturbation, method,
            session=None, fingerprint=None) -> ScreeningResult:
    """The screening computation itself (no memoization).

    ``session``, when given, only feeds the rank-1 engine's system / baseline
    factor caches (keyed by the already-computed ``fingerprint``) —
    result-level memoization lives in
    :meth:`~repro.engine.session.AnalysisSession.screening`, which calls this
    to build missing entries.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    output = _normalize_output(output)
    if elements is None:
        elements = [e.name for e in circuit
                    if isinstance(e, (Resistor, Conductor, Capacitor, VCCS))]
    else:
        elements = list(elements)

    if method == "rank1":
        return _screen_rank1(circuit, output, frequencies, elements,
                             perturbation, session=session,
                             fingerprint=fingerprint)
    if method != "rebuild":
        raise FormulationError(f"unknown screening method {method!r}")

    baseline = ACAnalysis(circuit, output).frequency_response(frequencies)
    screenings = [
        _screen_rebuild_one(circuit, output, frequencies, name, perturbation)
        for name in elements
    ]
    return ScreeningResult(
        frequencies=frequencies,
        baseline=baseline,
        screenings=screenings,
        perturbation=perturbation,
        method="rebuild",
    )


def element_sensitivities(circuit, output, frequencies, elements=None,
                          perturbation=0.01, method="rank1",
                          session=None) -> List[ElementInfluence]:
    """Rank elements by their influence on the transfer function.

    Parameters
    ----------
    circuit:
        The circuit at its design point.
    output:
        Output node / pair / :class:`~repro.nodal.reduce.TransferSpec`.
    frequencies:
        Sample frequencies in hertz over which the influence is measured.
    elements:
        Restrict the screening to these element names (default: every passive
        admittance element and VCCS).
    perturbation:
        Relative value perturbation used for the small-signal sensitivity
        figure (in addition to the removal test).
    method:
        Screening engine — see :func:`screen_elements`.
    session:
        Optional :class:`~repro.engine.session.AnalysisSession` shared with
        other stages of a chained workload — see :func:`screen_elements`.

    Returns
    -------
    list of ElementInfluence, sorted by increasing removal error (least
    influential first — the SBG removal order).
    """
    return screen_elements(circuit, output, frequencies, elements=elements,
                           perturbation=perturbation, method=method,
                           session=session).influences()
