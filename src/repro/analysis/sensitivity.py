"""Element influence screening by numeric perturbation.

For SBG-style circuit reduction one needs to know how much each element
contributes to the network function around the design point.  The screening
implemented here perturbs (or removes) one element at a time and measures the
worst-case relative change of the transfer function over a set of sample
frequencies computed with the numeric AC analysis — a brute-force but exact
measure that serves as the ranking consumed by
:mod:`repro.symbolic.sbg`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import FormulationError
from ..netlist.elements import Capacitor, Conductor, Resistor, VCCS
from .ac import ACAnalysis

__all__ = ["ElementInfluence", "element_sensitivities"]


@dataclasses.dataclass
class ElementInfluence:
    """Worst-case relative transfer-function change caused by one element."""

    name: str
    removal_error: float
    relative_perturbation_gain: float

    def negligible(self, threshold):
        """True when removing the element changes the response less than ``threshold``."""
        return self.removal_error < threshold


def _relative_error(reference, candidate):
    reference = np.asarray(reference, dtype=complex)
    candidate = np.asarray(candidate, dtype=complex)
    scale = np.maximum(np.abs(reference), np.finfo(float).tiny)
    return float(np.max(np.abs(candidate - reference) / scale))


def element_sensitivities(circuit, output, frequencies, elements=None,
                          perturbation=0.01) -> List[ElementInfluence]:
    """Rank elements by their influence on the transfer function.

    Parameters
    ----------
    circuit:
        The circuit at its design point.
    output:
        Output node / pair / :class:`~repro.nodal.reduce.TransferSpec`.
    frequencies:
        Sample frequencies in hertz over which the influence is measured.
    elements:
        Restrict the screening to these element names (default: every passive
        admittance element and VCCS).
    perturbation:
        Relative value perturbation used for the small-signal sensitivity
        figure (in addition to the removal test).

    Returns
    -------
    list of ElementInfluence, sorted by increasing removal error (least
    influential first — the SBG removal order).
    """
    frequencies = np.asarray(frequencies, dtype=float)
    baseline = ACAnalysis(circuit, output).frequency_response(frequencies)

    if elements is None:
        elements = [e.name for e in circuit
                    if isinstance(e, (Resistor, Conductor, Capacitor, VCCS))]

    influences: List[ElementInfluence] = []
    for name in elements:
        removed = circuit.with_element_removed(name)
        try:
            removed_response = ACAnalysis(removed, output).frequency_response(
                frequencies)
            removal_error = _relative_error(baseline, removed_response)
        except Exception:
            # Removing the element made the circuit singular — it is essential.
            removal_error = math.inf

        try:
            perturbed = circuit.with_value_scaled(name, 1.0 + perturbation)
            perturbed_response = ACAnalysis(perturbed, output).frequency_response(
                frequencies)
            sensitivity = _relative_error(baseline, perturbed_response) / perturbation
        except Exception:
            sensitivity = math.inf

        influences.append(ElementInfluence(
            name=name,
            removal_error=removal_error,
            relative_perturbation_gain=sensitivity,
        ))

    influences.sort(key=lambda item: item.removal_error)
    return influences
