"""Pole / zero extraction from extended-range polynomial coefficients.

Roots of the interpolated numerator and denominator give the poles and zeros
of the reference network function — a convenient design-oriented view of the
result (and an extension beyond what the paper reports).

Because the coefficients span hundreds of decades, the polynomial is first
rescaled: with ``s = λ·z`` and ``λ`` chosen as the geometric mean of the
per-power coefficient ratios, the transformed coefficients fit comfortably in
double precision and ``numpy.roots`` can be applied; the roots are then scaled
back by ``λ``.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import InterpolationError
from ..xfloat import XFloat

__all__ = ["polynomial_roots", "reference_poles_zeros"]


def _nonzero_indices(coefficients) -> List[int]:
    return [index for index, value in enumerate(coefficients)
            if not (isinstance(value, XFloat) and value.is_zero())
            and not (not isinstance(value, XFloat) and float(value) == 0.0)]


def polynomial_roots(coefficients: Sequence) -> np.ndarray:
    """Roots of a polynomial with float or :class:`XFloat` coefficients.

    Parameters
    ----------
    coefficients:
        Ascending powers of ``s``; trailing (and leading) zero coefficients
        are handled (zero roots are reported for missing low-order terms).

    Returns
    -------
    numpy.ndarray
        Complex roots in the original (unscaled) ``s`` domain.
    """
    values = [value if isinstance(value, XFloat) else XFloat(float(value), 0)
              for value in coefficients]
    nonzero = _nonzero_indices(values)
    if not nonzero:
        raise InterpolationError("cannot take roots of the zero polynomial")
    lowest, highest = nonzero[0], nonzero[-1]
    degree = highest - lowest
    if degree == 0:
        return np.zeros(lowest, dtype=complex)

    # Scale factor: geometric mean of the per-power magnitude decay, i.e. the
    # (degree)-th root of |p_low / p_high|.
    low_log = values[lowest].log10()
    high_log = values[highest].log10()
    lambda_log = (low_log - high_log) / degree
    # Transformed coefficients c_k = p_(lowest+k) * λ^k / p_lowest (so c_0 = 1).
    transformed = np.zeros(degree + 1, dtype=float)
    for k in range(degree + 1):
        value = values[lowest + k]
        if value.is_zero():
            continue
        log_magnitude = value.log10() + k * lambda_log - low_log
        if log_magnitude < -300:
            continue
        transformed[k] = value.sign() * 10.0**log_magnitude
    # numpy.roots expects descending powers.
    roots = np.roots(transformed[::-1])
    scale = 10.0**lambda_log
    scaled_roots = roots * scale
    if lowest:
        scaled_roots = np.concatenate([scaled_roots,
                                       np.zeros(lowest, dtype=complex)])
    return scaled_roots


def reference_poles_zeros(reference) -> Tuple[np.ndarray, np.ndarray]:
    """Poles and zeros of a :class:`~repro.interpolation.reference.NumericalReference`.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``(poles, zeros)`` in rad/s.
    """
    poles = polynomial_roots(reference.coefficients("denominator"))
    zeros = polynomial_roots(reference.coefficients("numerator"))
    return poles, zeros
