"""Statistical tolerance analysis over Monte Carlo ensembles.

The layer above :mod:`repro.montecarlo`: where the engine produces raw
``(M, F)`` response stacks, this module turns them into the quantities a
designer asks of a tolerance run —

* **envelopes** — per-frequency magnitude percentiles / extremes / moments of
  the ensemble Bode response (:meth:`MonteCarloResult.envelope`),
* **variance attribution** — how much of the output variance each tolerance
  axis explains, estimated by linear regression over the sampled values and
  cross-checked against the rank-1 screening engine's first-order prediction
  (:func:`variance_attribution`, :meth:`MonteCarloResult.attribution`),
* **corner analysis** — deterministic tolerance-band corners through the same
  vectorized engine (:func:`corner_analysis`),
* **yield** — the fraction of samples meeting gain / phase-margin
  specifications (:func:`yield_analysis`, :class:`YieldSpec`).

Results are cacheable in an :class:`~repro.engine.session.AnalysisSession`
under ``(circuit fingerprint, space, seed, grid, solver)`` — see
:meth:`repro.engine.session.AnalysisSession.montecarlo`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import LinAlgError
from ..montecarlo.engine import EnsembleResult, ensemble_sweep
from ..montecarlo.space import ParameterSpace
from .ac import ACAnalysis
from .bode import bode_from_response, gain_margin_db, phase_margin_deg
from .sensitivity import screen_elements

__all__ = [
    "MonteCarloResult",
    "ResponseEnvelope",
    "AttributionEntry",
    "CornerResult",
    "YieldSpec",
    "YieldResult",
    "ImportanceYieldResult",
    "monte_carlo_analysis",
    "corner_analysis",
    "variance_attribution",
    "yield_analysis",
    "importance_yield",
    "importance_shift_from_screening",
]


@dataclasses.dataclass
class ResponseEnvelope:
    """Per-frequency magnitude statistics of an ensemble (all in dB)."""

    frequencies: np.ndarray
    minimum_db: np.ndarray
    maximum_db: np.ndarray
    mean_db: np.ndarray
    std_db: np.ndarray
    percentile_low_db: np.ndarray
    percentile_high_db: np.ndarray
    percentiles: Tuple[float, float]

    def width_db(self) -> np.ndarray:
        """Per-frequency spread ``max − min`` in dB."""
        return self.maximum_db - self.minimum_db


@dataclasses.dataclass
class AttributionEntry:
    """One tolerance axis' share of the ensemble output variance.

    ``share`` is the fraction of the total (frequency-averaged) magnitude
    variance the axis explains in the first-order regression model;
    ``predicted_share`` is the same figure computed from the rank-1
    screening engine's perturbation responses instead of the samples — the
    two agree to first order when tolerances are small.
    """

    name: str
    share: float
    predicted_share: float


@dataclasses.dataclass
class CornerResult:
    """Deterministic tolerance-corner responses."""

    frequencies: np.ndarray
    values: np.ndarray          # (C, E) corner element values
    responses: np.ndarray       # (C, F) complex corner responses
    worst_low_db: np.ndarray    # (F,) per-frequency lowest corner magnitude
    worst_high_db: np.ndarray   # (F,) per-frequency highest corner magnitude


@dataclasses.dataclass
class YieldSpec:
    """Pass/fail specification evaluated per ensemble member.

    Attributes
    ----------
    name:
        Label used in the yield report.
    minimum_gain_db / maximum_gain_db:
        Bounds on the magnitude at ``at_frequency`` (hertz, required for
        gain bounds).
    minimum_phase_margin_deg:
        Lower bound on the phase margin of the member's response.
    minimum_gain_margin_db:
        Lower bound on the gain margin.
    """

    name: str = "spec"
    minimum_gain_db: Optional[float] = None
    maximum_gain_db: Optional[float] = None
    at_frequency: Optional[float] = None
    minimum_phase_margin_deg: Optional[float] = None
    minimum_gain_margin_db: Optional[float] = None

    def passes(self, bode) -> bool:
        """Whether one member's :class:`~repro.analysis.bode.BodeData` passes."""
        if self.minimum_gain_db is not None or self.maximum_gain_db is not None:
            if self.at_frequency is None:
                raise ValueError(
                    f"yield spec {self.name!r}: gain bounds need at_frequency")
            magnitude, __ = bode.at(self.at_frequency)
            if self.minimum_gain_db is not None and magnitude < self.minimum_gain_db:
                return False
            if self.maximum_gain_db is not None and magnitude > self.maximum_gain_db:
                return False
        if self.minimum_phase_margin_deg is not None:
            margin = phase_margin_deg(bode)
            if margin is None or margin < self.minimum_phase_margin_deg:
                return False
        if self.minimum_gain_margin_db is not None:
            margin = gain_margin_db(bode)
            if margin is None or margin < self.minimum_gain_margin_db:
                return False
        return True


@dataclasses.dataclass
class YieldResult:
    """Yield of an ensemble against a set of specifications.

    ``total`` counts the samples actually evaluated: quarantined samples of
    a resilient run (see :attr:`~repro.montecarlo.engine.EnsembleResult.report`)
    are excluded from the yield fraction and listed in ``quarantined``
    instead — a failed solve is a diagnostic, not a failed circuit.
    """

    total: int
    passed: int
    per_spec: Dict[str, int]     # spec name → number of samples passing it
    failures: List[int]          # sample indices failing at least one spec
    quarantined: List[int] = dataclasses.field(default_factory=list)

    @property
    def fraction(self) -> float:
        """Overall yield in ``[0, 1]`` (quarantined samples excluded)."""
        return self.passed / self.total if self.total else 1.0


def _surviving_magnitudes(ensemble) -> np.ndarray:
    """``(S, F)`` dB magnitudes of the samples that actually solved.

    Non-resilient ensembles survive whole; a resilient run's quarantined
    (NaN) rows are dropped so that extremes / moments / percentiles stay
    finite.  An ensemble with no survivors has no statistics at all.
    """
    mask = ensemble.surviving_mask()
    if not mask.any():
        raise LinAlgError(
            "every ensemble sample is quarantined; no surviving samples "
            "to compute statistics over (see EnsembleResult.report)")
    return ensemble.magnitudes_db()[mask]


@dataclasses.dataclass
class MonteCarloResult:
    """A Monte Carlo tolerance run: ensemble + nominal response + statistics."""

    ensemble: EnsembleResult
    nominal_response: np.ndarray
    seed: int

    @property
    def frequencies(self) -> np.ndarray:
        """The sweep grid in hertz."""
        return self.ensemble.frequencies

    @property
    def responses(self) -> np.ndarray:
        """``(M, F)`` complex ensemble responses."""
        return self.ensemble.responses

    def envelope(self, percentiles=(5.0, 95.0)) -> ResponseEnvelope:
        """Magnitude envelope of the ensemble (see :class:`ResponseEnvelope`).

        Quarantined samples of a resilient run are excluded — the envelope
        describes the samples that actually solved.

        A streaming ensemble (``store_responses=False``) is served from its
        :class:`~repro.montecarlo.statistics.EnsembleStatistics` accumulator
        instead of the materialized responses: extremes and moments are the
        exact streaming folds, and the percentile curves come from the
        fixed-bin magnitude histogram (accurate to one bin width — 0.5 dB
        at the defaults).
        """
        low, high = percentiles
        statistics = getattr(self.ensemble, "statistics", None)
        if self.ensemble.responses is None and statistics is not None:
            if statistics.count == 0:
                raise LinAlgError(
                    "every ensemble sample is quarantined; no surviving "
                    "samples to compute statistics over "
                    "(see EnsembleResult.report)")
            return ResponseEnvelope(
                frequencies=self.frequencies,
                minimum_db=statistics.min_db.copy(),
                maximum_db=statistics.max_db.copy(),
                mean_db=statistics.mean_db(),
                std_db=statistics.std_db(),
                percentile_low_db=statistics.percentile_db(low),
                percentile_high_db=statistics.percentile_db(high),
                percentiles=(float(low), float(high)),
            )
        magnitudes = _surviving_magnitudes(self.ensemble)
        return ResponseEnvelope(
            frequencies=self.frequencies,
            minimum_db=magnitudes.min(axis=0),
            maximum_db=magnitudes.max(axis=0),
            mean_db=magnitudes.mean(axis=0),
            std_db=magnitudes.std(axis=0),
            percentile_low_db=np.percentile(magnitudes, low, axis=0),
            percentile_high_db=np.percentile(magnitudes, high, axis=0),
            percentiles=(float(low), float(high)),
        )

    def attribution(self, session=None) -> List[AttributionEntry]:
        """Per-axis variance attribution (see :func:`variance_attribution`)."""
        return variance_attribution(self, session=session)

    def yield_against(self, specs) -> YieldResult:
        """Yield of this ensemble against ``specs`` (see :func:`yield_analysis`)."""
        return yield_analysis(self, specs)


def monte_carlo_analysis(circuit, output, frequencies, space=None, *,
                         samples=128, seed=0, tolerances=None,
                         solver="lapack", method="auto", workers=None,
                         processes=None, session=None, on_failure="raise",
                         policy=None, store_responses=True,
                         shard_size=1024) -> MonteCarloResult:
    """Run a Monte Carlo tolerance analysis of ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit at its design point.  Tolerance axes come from element
        ``tolerance`` metadata, an explicit ``space``, or the ``tolerances``
        name → fraction mapping.
    output:
        Output node, pair or :class:`~repro.nodal.reduce.TransferSpec`.
    frequencies:
        Sweep grid in hertz.
    samples, seed:
        Ensemble size and RNG seed (deterministic per seed).
    solver, method, workers:
        Passed to :func:`repro.montecarlo.ensemble_sweep`.
    processes:
        Worker *processes* — anything other than ``None`` / ``1`` routes
        the ensemble through the supervised multiprocess driver
        (:func:`~repro.montecarlo.parallel.parallel_ensemble_sweep`),
        keeping the ``on_failure`` semantics; with quarantine on,
        statistics, envelopes and yield draw their surviving mask from the
        merged cross-process :class:`~repro.engine.resilience.SweepReport`,
        bit-identical to an in-process resilient run.  Bypasses the
        ``session`` memo (the parallel path is for one-shot production
        ensembles).
    session:
        Optional :class:`~repro.engine.session.AnalysisSession`; the whole
        result is then memoized under ``(circuit, space, grid, samples,
        seed, solver)`` and the nominal response shares the session's cached
        sweep factorizations.
    on_failure, policy:
        Resilience controls passed to :func:`repro.montecarlo.ensemble_sweep`
        — ``on_failure="quarantine"`` masks failing samples instead of
        raising, ``policy`` a :class:`~repro.engine.resilience.SolvePolicy`.
        Resilient runs bypass the session memo (the quarantine report is a
        run artefact, not a cacheable response).
    store_responses, shard_size:
        ``store_responses=False`` selects the streaming estimation mode of
        the ensemble drivers: responses are folded shard by shard
        (``shard_size`` samples each) into O(F)-memory accumulators and
        never materialized, so ``samples`` can reach 10⁶ on one machine.
        :meth:`MonteCarloResult.envelope` then serves extremes / moments /
        histogram percentiles from the accumulator; per-sample accessors
        (``responses``, attribution, yield) are unavailable.  Streaming
        runs bypass the session memo.

    Returns
    -------
    MonteCarloResult
    """
    if space is None:
        space = ParameterSpace(circuit, tolerances)
    if not store_responses:
        return _monte_carlo(circuit, output, frequencies, space, samples,
                            seed, solver, method, workers, session=session,
                            on_failure=on_failure, policy=policy,
                            processes=processes, store_responses=False,
                            shard_size=shard_size)
    if processes is not None and processes != 1:
        return _monte_carlo(circuit, output, frequencies, space, samples,
                            seed, solver, method, workers, session=session,
                            on_failure=on_failure, policy=policy,
                            processes=processes)
    if session is not None and on_failure == "raise" and policy is None:
        return session.montecarlo(circuit, output, frequencies, space,
                                  samples=samples, seed=seed, solver=solver,
                                  method=method, workers=workers)
    return _monte_carlo(circuit, output, frequencies, space, samples, seed,
                        solver, method, workers, session=session,
                        on_failure=on_failure, policy=policy)


def _monte_carlo(circuit, output, frequencies, space, samples, seed, solver,
                 method, workers, session=None, on_failure="raise",
                 policy=None, processes=None, store_responses=True,
                 shard_size=1024) -> MonteCarloResult:
    """The analysis itself (no memoization) — session feeds the nominal sweep."""
    frequencies = np.asarray(frequencies, dtype=float)
    if processes is not None and processes != 1:
        from ..montecarlo.parallel import parallel_ensemble_sweep

        extra = ({"store_responses": False, "shard_size": shard_size}
                 if not store_responses else {})
        ensemble = parallel_ensemble_sweep(
            circuit, output, frequencies, space, samples=samples, seed=seed,
            solver=solver, method=method, workers=processes,
            on_failure=on_failure, policy=policy, **extra)
    else:
        extra = ({"store_responses": False, "shard_size": shard_size}
                 if not store_responses else {})
        ensemble = ensemble_sweep(circuit, output, frequencies, space,
                                  samples=samples, seed=seed, solver=solver,
                                  method=method, workers=workers,
                                  on_failure=on_failure, policy=policy,
                                  **extra)
    nominal = ACAnalysis(circuit, output, method=method,
                         session=session).frequency_response(frequencies)
    return MonteCarloResult(ensemble=ensemble, nominal_response=nominal,
                            seed=seed)


def corner_analysis(circuit, output, frequencies, space=None, *,
                    tolerances=None, solver="lapack", method="auto",
                    workers=None) -> CornerResult:
    """Evaluate the deterministic tolerance-band corners of ``circuit``.

    Small spaces run the full ``2^E`` factorial; larger ones the axis
    extremes plus one-at-a-time corners (see
    :meth:`~repro.montecarlo.space.ParameterSpace.corner_multipliers`).
    """
    if space is None:
        space = ParameterSpace(circuit, tolerances)
    frequencies = np.asarray(frequencies, dtype=float)
    values = space.corner_values()
    ensemble = ensemble_sweep(circuit, output, frequencies, space,
                              values=values, solver=solver, method=method,
                              workers=workers)
    magnitudes = ensemble.magnitudes_db()
    return CornerResult(
        frequencies=frequencies,
        values=values,
        responses=ensemble.responses,
        worst_low_db=magnitudes.min(axis=0),
        worst_high_db=magnitudes.max(axis=0),
    )


def variance_attribution(result, session=None) -> List[AttributionEntry]:
    """Attribute ensemble output variance to the tolerance axes.

    A first-order model ``|H|_dB(m) ≈ β₀ + Σ_e β_e·δ_e(m)`` (``δ_e`` the
    relative value deviation of axis ``e``) is fit per frequency by least
    squares over the samples; with independent axes the explained variance
    splits as ``β_e²·var(δ_e)``, and each entry reports its
    frequency-averaged share of the total.  The same shares are predicted
    without any sampling from the rank-1 screening engine
    (:func:`~repro.analysis.sensitivity.screen_elements`): its perturbation
    response linearizes ``∂|H|/∂δ_e`` around the design point, which is
    exactly ``β_e`` to first order.  Comparing the two columns validates the
    screening engine statistically — and flags axes whose influence is
    dominated by higher-order effects when they disagree.

    Entries are sorted by decreasing sampled share.
    """
    ensemble = (result.ensemble if isinstance(result, MonteCarloResult)
                else result)
    space = ensemble.space
    surviving = ensemble.surviving_mask()
    if not surviving.any():
        raise LinAlgError(
            "every ensemble sample is quarantined; cannot attribute variance "
            "(see EnsembleResult.report)")
    deviations = ensemble.values / space.nominal_values[None, :] - 1.0
    deviations = np.where(np.isfinite(deviations), deviations, 0.0)
    deviations = deviations[surviving]
    magnitudes = ensemble.magnitudes_db()[surviving]

    # Least-squares fit per frequency: design matrix [1, δ_1 .. δ_E].
    design = np.column_stack([np.ones(deviations.shape[0]), deviations])
    coefficients, *__ = np.linalg.lstsq(design, magnitudes, rcond=None)
    slopes = coefficients[1:, :]                      # (E, F)
    axis_variance = deviations.var(axis=0)            # (E,)
    explained = slopes**2 * axis_variance[:, None]    # (E, F)
    total = magnitudes.var(axis=0)                    # (F,)
    safe_total = np.maximum(total, np.finfo(float).tiny)
    shares = (explained / safe_total[None, :]).mean(axis=1)

    # First-order prediction from the rank-1 screening engine.
    perturbation = 0.01
    screening = screen_elements(space.circuit, ensemble.output,
                                ensemble.frequencies, elements=space.names,
                                perturbation=perturbation, session=session)
    predicted = np.zeros(len(space))
    baseline_db = 20.0 * np.log10(
        np.maximum(np.abs(screening.baseline), np.finfo(float).tiny))
    for index, screen in enumerate(screening.screenings):
        if screen.perturbed_response is None:
            predicted[index] = math.inf
            continue
        perturbed_db = 20.0 * np.log10(
            np.maximum(np.abs(screen.perturbed_response),
                       np.finfo(float).tiny))
        slope = (perturbed_db - baseline_db) / perturbation   # (F,)
        predicted[index] = float(
            np.mean(slope**2 * axis_variance[index] / safe_total))
    entries = [AttributionEntry(name=space.names[index],
                                share=float(shares[index]),
                                predicted_share=float(predicted[index]))
               for index in range(len(space))]
    entries.sort(key=lambda entry: entry.share, reverse=True)
    return entries


def yield_analysis(result, specs) -> YieldResult:
    """Yield of a Monte Carlo ensemble against gain / margin specifications.

    Parameters
    ----------
    result:
        A :class:`MonteCarloResult` (or a raw
        :class:`~repro.montecarlo.engine.EnsembleResult`).
    specs:
        One :class:`YieldSpec` or a sequence of them; a sample passes when
        it meets *every* spec.
    """
    ensemble = result.ensemble if isinstance(result, MonteCarloResult) else result
    if isinstance(specs, YieldSpec):
        specs = [specs]
    specs = list(specs)
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(
            f"yield specs must have distinct names, got {names} "
            "(per-spec pass counts are keyed by name)")
    per_spec = {spec.name: 0 for spec in specs}
    failures: List[int] = []
    surviving = ensemble.surviving_mask()
    quarantined = [int(sample) for sample in np.flatnonzero(~surviving)]
    for sample in range(ensemble.responses.shape[0]):
        if not surviving[sample]:
            continue
        bode = bode_from_response(ensemble.frequencies,
                                  ensemble.responses[sample])
        sample_passes = True
        for spec in specs:
            if spec.passes(bode):
                per_spec[spec.name] += 1
            else:
                sample_passes = False
        if not sample_passes:
            failures.append(sample)
    total = int(surviving.sum())
    return YieldResult(total=total, passed=total - len(failures),
                       per_spec=per_spec, failures=failures,
                       quarantined=quarantined)


# --------------------------------------------------------------------- #
# importance-sampled rare-failure yield
# --------------------------------------------------------------------- #


def importance_shift_from_screening(circuit, output, frequencies, space, *,
                                    magnitude=3.0, direction="low",
                                    session=None) -> Dict[str, float]:
    """Per-axis proposal shifts aimed along the screened failure direction.

    The rank-1 screening engine (the same linearization that
    :func:`variance_attribution` validates statistically) gives each axis'
    first-order magnitude slope ``∂|H|_dB/∂δ_e``.  In the per-axis sampling
    units of :meth:`~repro.montecarlo.space.ParameterSpace.importance_sample`
    (z-scores for gaussian axes, band units for uniform axes, ``fraction/3``
    resp. ``fraction`` of relative deviation each) the least-unlikely
    direction that moves the frequency-averaged gain is proportional to the
    slope-times-unit gradient; this returns that direction scaled to
    Euclidean length ``magnitude`` (so ``magnitude=3.0`` centres the
    proposal three combined sigmas into the tail), signed toward lower gain
    for ``direction="low"`` and higher gain for ``"high"``.

    Corner axes have no continuous shift and are returned as 0.
    """
    if direction not in ("low", "high"):
        raise ValueError(
            f"direction must be 'low' or 'high', got {direction!r}")
    perturbation = 0.01
    screening = screen_elements(circuit, output, frequencies,
                                elements=space.names,
                                perturbation=perturbation, session=session)
    baseline_db = 20.0 * np.log10(
        np.maximum(np.abs(screening.baseline), np.finfo(float).tiny))
    gradient = np.zeros(len(space))
    for index, (axis, screen) in enumerate(zip(space.axes,
                                               screening.screenings)):
        if screen.perturbed_response is None:
            continue
        kind = axis.tolerance.distribution
        if kind == "corner":
            continue
        unit = (axis.tolerance.fraction / 3.0 if kind == "gaussian"
                else axis.tolerance.fraction)
        perturbed_db = 20.0 * np.log10(
            np.maximum(np.abs(screen.perturbed_response),
                       np.finfo(float).tiny))
        slope = float(np.mean((perturbed_db - baseline_db) / perturbation))
        gradient[index] = slope * unit
    norm = float(np.linalg.norm(gradient))
    if norm == 0.0:
        raise LinAlgError(
            "screening gradient vanishes: no continuous axis moves the "
            "output to first order, cannot aim an importance proposal")
    sign = -1.0 if direction == "low" else 1.0
    shifts = sign * float(magnitude) * gradient / norm
    return {axis.name: float(shifts[index])
            for index, axis in enumerate(space.axes)}


@dataclasses.dataclass
class ImportanceYieldResult:
    """Rare-failure yield estimated by importance sampling.

    Wraps the streaming ensemble (``ensemble.yields`` is the weighted
    :class:`~repro.montecarlo.statistics.StreamingYield` accumulator) with
    the resolved proposal parameters, exposing the two failure estimators
    and the weight-health diagnostics a tail estimate must be read with:
    :meth:`failure_diagnostics` (the failure-region effective sample size —
    the one that predicts estimator variance) and :meth:`diagnostics`
    (overall weights).
    """

    ensemble: EnsembleResult
    shift: Dict[str, float]
    scale: float
    mixture: float
    seed: int

    @property
    def streaming(self):
        """The underlying :class:`~repro.montecarlo.statistics.StreamingYield`."""
        return self.ensemble.yields

    @property
    def failure_probability(self) -> float:
        """Unbiased likelihood-ratio estimate of ``P(fail)``."""
        return self.streaming.failure_probability

    @property
    def failure_probability_normalized(self) -> float:
        """Self-normalized estimate (lower variance, O(1/N) bias)."""
        return self.streaming.failure_probability_normalized

    @property
    def failure_standard_error(self) -> float:
        """Standard error of :attr:`failure_probability`."""
        return self.streaming.failure_standard_error

    @property
    def yield_fraction(self) -> float:
        """``1 − P(fail)`` from the unbiased estimator, clipped to [0, 1]."""
        return float(min(1.0, max(0.0, 1.0 - self.failure_probability)))

    def diagnostics(self):
        """Overall weight diagnostics (Kish ESS, max-weight share)."""
        return self.streaming.weight_diagnostics()

    def failure_diagnostics(self):
        """Failure-region weight diagnostics — gate tail estimates on this."""
        return self.streaming.failure_diagnostics()


def importance_yield(circuit, output, frequencies, specs, space=None, *,
                     samples=4096, seed=0, tolerances=None, shift=None,
                     scale=1.0, mixture=0.1, magnitude=3.0,
                     solver="lapack", method="auto",
                     on_failure="quarantine", policy=None,
                     shard_size=1024, histogram_bins=None,
                     histogram_range=None,
                     session=None) -> ImportanceYieldResult:
    """Estimate rare-failure yield with an importance-sampled ensemble.

    Draws ``samples`` parameter vectors from a proposal pushed toward the
    failure region (see
    :meth:`~repro.montecarlo.space.ParameterSpace.importance_sample`), runs
    them through the streaming ensemble engine with the likelihood-ratio
    weights threaded into the accumulators, and scores ``specs`` per sample
    — resolving failure probabilities far below ``1/samples``, where plain
    Monte Carlo would see zero failures.

    Parameters beyond :func:`monte_carlo_analysis`:

    specs:
        One :class:`YieldSpec` or a sequence (a sample fails when it misses
        any of them).
    shift:
        The proposal centre: a scalar (every continuous axis), a
        ``{element name: value}`` dict in per-axis sampling units, or
        ``None`` to aim it automatically along the rank-1 screening
        gradient scaled to length ``magnitude``
        (:func:`importance_shift_from_screening`, toward lower gain).
    scale, mixture:
        Proposal width multiplier and defensive nominal-mixture fraction;
        the ``mixture=0.1`` default bounds weights when the shift
        overshoots the failure boundary.
    magnitude:
        Length of the auto-aimed shift (ignored when ``shift`` is given).

    Always check :meth:`ImportanceYieldResult.failure_diagnostics` — a
    degenerate failure-region ESS means the estimate rests on a handful of
    weighted failures and its standard error is not trustworthy.
    """
    if space is None:
        space = ParameterSpace(circuit, tolerances)
    frequencies = np.asarray(frequencies, dtype=float)
    if shift is None:
        shift = importance_shift_from_screening(
            circuit, output, frequencies, space, magnitude=magnitude,
            direction="low", session=session)
    values, weights = space.importance_sample(samples, seed, shift=shift,
                                              scale=scale, mixture=mixture)
    ensemble = ensemble_sweep(circuit, output, frequencies, space,
                              values=values, solver=solver, method=method,
                              on_failure=on_failure, policy=policy,
                              store_responses=False, shard_size=shard_size,
                              histogram_bins=histogram_bins,
                              histogram_range=histogram_range,
                              weights=weights, yield_specs=specs)
    resolved = (dict(shift) if isinstance(shift, dict)
                else {axis.name: float(shift) for axis in space.axes})
    return ImportanceYieldResult(ensemble=ensemble, shift=resolved,
                                 scale=float(scale) if np.isscalar(scale)
                                 else scale,
                                 mixture=float(mixture), seed=int(seed))
