"""Numeric frequency-domain analysis — the "electrical simulator" substrate.

Fig. 2 of the paper validates the interpolated coefficients by overlaying the
Bode plot computed from them with the output of a commercial electrical
simulator.  This package provides the stand-in: a direct AC sweep of the full
MNA system (:mod:`repro.analysis.ac`), Bode utilities
(:mod:`repro.analysis.bode`), curve comparison metrics
(:mod:`repro.analysis.compare`), pole/zero extraction from extended-range
coefficients (:mod:`repro.analysis.poles`) and element sensitivity screening
(:mod:`repro.analysis.sensitivity`, used by the SBG ranking).
"""

from .ac import ACAnalysis, ac_sweep
from .bode import (BodeData, bode_from_response, bode_sweep, gain_margin_db,
                   phase_margin_deg)
from .compare import BodeComparison, compare_responses
from .montecarlo import (CornerResult, ImportanceYieldResult,
                         MonteCarloResult, ResponseEnvelope, YieldResult,
                         YieldSpec, corner_analysis,
                         importance_shift_from_screening, importance_yield,
                         monte_carlo_analysis, variance_attribution,
                         yield_analysis)
from .poles import polynomial_roots, reference_poles_zeros
from .sensitivity import (ElementInfluence, ScreeningResult,
                          element_sensitivities, screen_elements)

__all__ = [
    "ACAnalysis",
    "ac_sweep",
    "BodeData",
    "bode_from_response",
    "bode_sweep",
    "gain_margin_db",
    "phase_margin_deg",
    "BodeComparison",
    "compare_responses",
    "MonteCarloResult",
    "ResponseEnvelope",
    "CornerResult",
    "YieldSpec",
    "ImportanceYieldResult",
    "importance_yield",
    "importance_shift_from_screening",
    "YieldResult",
    "monte_carlo_analysis",
    "corner_analysis",
    "variance_attribution",
    "yield_analysis",
    "polynomial_roots",
    "reference_poles_zeros",
    "ElementInfluence",
    "ScreeningResult",
    "element_sensitivities",
    "screen_elements",
]
