"""Evaluation of numerator / denominator samples at interpolation points.

This module implements Eqs. (7)–(10) of the paper: at a complex frequency
``s_k`` the (scaled) nodal matrix is LU-factored once; the determinant gives
``D(s_k)`` and the solution of the linear system gives ``H(s_k)``, from which
``N(s_k) = H(s_k) · D(s_k)``.

Because scaled determinants of large circuits can exceed the double-precision
exponent range, both values are carried as ``(complex mantissa, decimal
exponent)`` pairs (see :class:`SampleValue`); the DFT stage later rescales a
whole batch of samples by a common power of ten.

Multi-point evaluation (:meth:`NetworkFunctionSampler.sample_many`,
:meth:`NetworkFunctionSampler.frequency_response`) routes through the batched
engine of :mod:`repro.nodal.batch`, which assembles the frequency-independent
and frequency-proportional matrix parts once per sweep and reuses the
factorization structure across all points; pass ``batch=False`` to force the
original one-point-at-a-time loop (used by benchmarks and equivalence tests).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InterpolationError
from ..linalg.config import use_dense
from ..linalg.dense import dense_lu
from ..linalg.lu import sparse_lu
from .admittance import NodalFormulation, build_nodal_formulation
from .reduce import TransferSpec

__all__ = ["SampleValue", "NetworkFunctionSampler"]


@dataclasses.dataclass
class SampleValue:
    """One evaluation of the network function at a complex frequency.

    ``numerator`` and ``denominator`` are ``(mantissa, exponent)`` pairs
    representing ``mantissa * 10**exponent`` with a complex mantissa.
    """

    s: complex
    numerator: Tuple[complex, int]
    denominator: Tuple[complex, int]

    def transfer(self) -> complex:
        """``H(s) = N(s) / D(s)`` as a plain complex number."""
        n_mantissa, n_exponent = self.numerator
        d_mantissa, d_exponent = self.denominator
        if d_mantissa == 0:
            raise ZeroDivisionError("denominator sample is zero")
        ratio = n_mantissa / d_mantissa
        shift = n_exponent - d_exponent
        return ratio * 10.0**shift


def _scaled_value(mantissa: complex, exponent: int) -> Tuple[complex, int]:
    """Renormalize so the mantissa magnitude is in [1, 10) (or exactly 0)."""
    if mantissa == 0:
        return 0.0 + 0.0j, 0
    magnitude = abs(mantissa)
    shift = int(math.floor(math.log10(magnitude)))
    if shift:
        mantissa /= 10.0**shift
        exponent += shift
    return mantissa, exponent


class NetworkFunctionSampler:
    """Samples ``N(s)`` and ``D(s)`` of a circuit's network function.

    Parameters
    ----------
    circuit:
        Admittance-form circuit (see
        :func:`repro.netlist.transform.to_admittance_form`).
    spec:
        :class:`~repro.nodal.reduce.TransferSpec` naming drive and output.
    method:
        ``"auto"`` (dense at or below the configured
        :func:`~repro.linalg.config.dense_cutoff`), ``"dense"`` or
        ``"sparse"``.
    """

    def __init__(self, circuit, spec, method="auto"):
        if isinstance(spec, TransferSpec):
            self.formulation = build_nodal_formulation(circuit, spec)
        elif isinstance(spec, NodalFormulation):
            self.formulation = spec
        else:
            raise InterpolationError(
                "spec must be a TransferSpec or NodalFormulation"
            )
        if method not in ("auto", "dense", "sparse"):
            raise InterpolationError(f"unknown factorization method {method!r}")
        self.method = method
        #: Number of LU factorizations performed (for benchmarking).  Batched
        #: sweeps count one factorization per point, whether the work was done
        #: by the vectorized stack LU or by structure-reusing refactorization.
        self.factorization_count = 0
        self._batch_sampler = None

    # ------------------------------------------------------------------ #

    @property
    def dimension(self):
        """Number of unknown node voltages."""
        return self.formulation.dimension

    def max_polynomial_degree(self):
        """Upper bound on numerator / denominator degree (see formulation)."""
        return self.formulation.max_polynomial_degree()

    def _factor(self, matrix):
        self.factorization_count += 1
        if use_dense(matrix.n_rows, self.method):
            return dense_lu(matrix)
        return sparse_lu(matrix)

    # ------------------------------------------------------------------ #

    def sample(self, s, conductance_scale=1.0, frequency_scale=1.0) -> SampleValue:
        """Evaluate numerator and denominator at complex frequency ``s``.

        The matrix assembled is ``g·G + s·f·C`` — i.e. the *scaled* system —
        so the polynomial recovered from these samples has the normalized
        coefficients ``p'_i`` of Eq. (11).
        """
        formulation = self.formulation
        matrix = formulation.assemble(s, conductance_scale, frequency_scale)
        factorization = self._factor(matrix)
        det_mantissa, det_exponent = factorization.determinant_mantissa_exponent()
        if det_mantissa == 0:
            return SampleValue(s=complex(s), numerator=(0.0 + 0.0j, 0),
                               denominator=(0.0 + 0.0j, 0))

        if formulation.output_is_forced():
            rhs = None
            transfer = formulation.output_voltage(
                np.zeros(formulation.dimension, dtype=complex)
            )
        else:
            rhs = formulation.rhs(s, conductance_scale, frequency_scale)
            solution = factorization.solve(rhs)
            transfer = formulation.output_voltage(solution)

        numerator = _scaled_value(transfer * det_mantissa, det_exponent)
        denominator = (det_mantissa, det_exponent)
        return SampleValue(s=complex(s), numerator=numerator,
                           denominator=denominator)

    def sample_many(self, points, conductance_scale=1.0,
                    frequency_scale=1.0, batch=True) -> List[SampleValue]:
        """Evaluate at every point of ``points`` (a sequence of complex values).

        Results preserve the input order.  With ``batch=True`` (the default)
        the sweep runs through the batched engine
        (:class:`~repro.nodal.batch.BatchSampler`): the matrix parts are
        assembled once and the factorization structure is shared across all
        points.  ``batch=False`` evaluates one point at a time via
        :meth:`sample` — same results, used as the baseline in benchmarks and
        equivalence tests.
        """
        points = list(points)
        if batch and len(points) > 1:
            batch_sampler = self.batch_sampler()
            samples = batch_sampler.sample_batch(points, conductance_scale,
                                                 frequency_scale)
            self.factorization_count += len(points)
            return samples
        return [self.sample(point, conductance_scale, frequency_scale)
                for point in points]

    def batch_sampler(self):
        """The cached :class:`~repro.nodal.batch.BatchSampler` for this circuit."""
        if self._batch_sampler is None:
            from .batch import BatchSampler

            self._batch_sampler = BatchSampler(self.formulation,
                                               method=self.method)
        return self._batch_sampler

    def transfer_value(self, s) -> complex:
        """Exact (unscaled) ``H(s)`` at a single complex frequency.

        This is the value a conventional AC analysis computes and is used for
        cross-checking interpolated polynomials (Fig. 2 of the paper).
        """
        return self.sample(s, 1.0, 1.0).transfer()

    def frequency_response(self, frequencies) -> np.ndarray:
        """``H(j·2π·f)`` for an array of frequencies in hertz (batched)."""
        frequencies = np.asarray(frequencies, dtype=float)
        samples = self.sample_many(2j * math.pi * frequencies)
        return np.asarray([sample.transfer() for sample in samples],
                          dtype=complex)
