"""Builder of the nodal admittance formulation ``(G, C, forced columns)``.

For an admittance-form circuit the node equations are ``(G + s C) V = J`` with
``G`` collecting conductances and transconductances and ``C`` collecting
capacitances.  Nodes held at a known voltage by a grounded input source are
*forced*: their rows are dropped and their columns move to the right-hand
side.  The result is exactly the object the interpolation engine samples:
``D(s) = det(G + sC)`` over the unknown nodes and ``N(s) = H(s) D(s)``.

The builder additionally records the two "admittance orders" needed by the
scale-factor bookkeeping of Eq. (11): the denominator order ``M`` (matrix
dimension) and the numerator order (``M`` for a voltage drive, ``M - 1`` for a
current drive, because a current excitation contributes no admittance factor).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine.formulation import FormulationBase
from ..errors import FormulationError
from ..linalg.rank1 import Rank1Stamp
from ..linalg.sparse import SparseMatrix
from ..netlist.circuit import Circuit
from ..netlist.elements import (
    Capacitor,
    Conductor,
    CurrentSource,
    GROUND,
    Inductor,
    Resistor,
    VCCS,
    VoltageSource,
)
from .reduce import TransferSpec

__all__ = ["NodalFormulation", "build_nodal_formulation"]


class NodalFormulation(FormulationBase):
    """Assembled nodal matrices for one circuit + transfer specification.

    Do not construct directly; use :func:`build_nodal_formulation`.
    Implements the :class:`~repro.engine.formulation.Formulation` protocol —
    assembly (single-point, batched, merged sparse structure) is inherited
    from :class:`~repro.engine.formulation.FormulationBase`.

    Attributes
    ----------
    unknown_nodes:
        Node names corresponding to matrix rows/columns (order fixed).
    forced:
        Mapping forced node → drive coefficient (volts per unit drive).
    conductance, capacitance:
        ``M x M`` :class:`SparseMatrix` G and C over the unknowns.
    forced_conductance, forced_capacitance:
        ``M x F`` coupling matrices from forced-node voltages into the unknown
        equations.
    current_injection:
        Length-``M`` vector of source current injections per unit drive.
    drive_kind:
        ``"voltage"`` or ``"current"``.
    """

    def __init__(self, circuit, spec, drive_kind, unknown_nodes, forced,
                 conductance, capacitance, forced_conductance,
                 forced_capacitance, current_injection, output_pos, output_neg):
        self.circuit = circuit
        self.spec = spec
        self.drive_kind = drive_kind
        self.unknown_nodes = unknown_nodes
        self.forced = forced
        self.conductance = conductance
        self.capacitance = capacitance
        self.forced_conductance = forced_conductance
        self.forced_capacitance = forced_capacitance
        self.current_injection = current_injection
        self._output_pos = output_pos
        self._output_neg = output_neg
        self._index = {node: i for i, node in enumerate(unknown_nodes)}
        self._forced_index = {node: i for i, node in enumerate(forced)}
        self._forced_couplings = None

    # ------------------------------------------------------------------ #
    # dimensions and orders
    # ------------------------------------------------------------------ #

    @property
    def dimension(self):
        """Number of unknown node voltages ``M``."""
        return len(self.unknown_nodes)

    @property
    def denominator_admittance_order(self):
        """Number of admittance factors per denominator term (``M``)."""
        return self.dimension

    @property
    def numerator_admittance_order(self):
        """Number of admittance factors per numerator term."""
        if self.drive_kind == "voltage":
            return self.dimension
        return self.dimension - 1

    def max_polynomial_degree(self):
        """Upper bound on the degree of numerator and denominator in ``s``.

        Each determinant term takes at most one factor per matrix row, and each
        capacitive factor contributes one power of ``s``; the bound is the
        smaller of the matrix dimension and the number of capacitors touching
        the unknown equations.
        """
        touching = 0
        relevant = set(self.unknown_nodes) | set(self.forced)
        for element in self.circuit.elements_of_type(Capacitor):
            if element.value == 0.0:
                continue
            if element.node_pos in relevant or element.node_neg in relevant:
                touching += 1
        return min(touching, self.dimension)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def sparse_parts(self):
        """``(G, C)`` over the unknown nodes (the Formulation protocol)."""
        return self.conductance, self.capacitance

    def forced_couplings(self):
        """Cached ``(G_f · v_f, C_f · v_f)`` coupling vectors (length ``M``).

        These are the constant and frequency-proportional parts of the
        forced-node contribution to the right-hand side; with them the whole
        sweep's excitation is ``J - g·(G_f v_f) - s_k·f·(C_f v_f)``.
        """
        if self._forced_couplings is None:
            m = self.dimension
            conductance_part = np.zeros(m, dtype=complex)
            capacitance_part = np.zeros(m, dtype=complex)
            if self.forced:
                forced_voltages = np.array(
                    [self.forced[node] for node in self.forced], dtype=complex
                )
                for row, col, value in self.forced_conductance.entries():
                    conductance_part[row] += value * forced_voltages[col]
                for row, col, value in self.forced_capacitance.entries():
                    capacitance_part[row] += value * forced_voltages[col]
            self._forced_couplings = (conductance_part, capacitance_part)
        return self._forced_couplings

    def rhs_batch(self, s_values, conductance_scale=1.0, frequency_scale=1.0):
        """Right-hand sides per unit drive as one ``(K, M)`` stack."""
        s = np.asarray(s_values, dtype=complex)
        conductance_part, capacitance_part = self.forced_couplings()
        base = self.current_injection - conductance_scale * conductance_part
        factors = s * frequency_scale
        return base[None, :] - factors[:, None] * capacitance_part[None, :]

    def rhs(self, s, conductance_scale=1.0, frequency_scale=1.0):
        """Right-hand side per unit drive at complex frequency ``s``."""
        m = self.dimension
        rhs = np.array(self.current_injection, dtype=complex)
        if self.forced:
            forced_voltages = np.array(
                [self.forced[node] for node in self.forced], dtype=complex
            )
            coupling = np.zeros(m, dtype=complex)
            for row, col, value in self.forced_conductance.entries():
                coupling[row] += conductance_scale * value * forced_voltages[col]
            factor = complex(s) * frequency_scale
            for row, col, value in self.forced_capacitance.entries():
                coupling[row] += factor * value * forced_voltages[col]
            rhs -= coupling
        return rhs

    def node_voltage(self, solution, node):
        """Voltage of ``node`` given the solution vector (per unit drive)."""
        if node == GROUND:
            return 0.0 + 0.0j
        if node in self._index:
            return complex(solution[self._index[node]])
        if node in self._forced_index:
            return complex(self.forced[node])
        raise FormulationError(f"node {node!r} is not part of the formulation")

    def output_voltage(self, solution):
        """Output (differential) voltage for the spec's output nodes."""
        positive = self.node_voltage(solution, self._output_pos)
        if self._output_neg is None:
            return positive
        return positive - self.node_voltage(solution, self._output_neg)

    def output_is_forced(self):
        """True when the output voltage does not depend on the solution."""
        nodes = [self._output_pos]
        if self._output_neg is not None:
            nodes.append(self._output_neg)
        return all(node == GROUND or node in self._forced_index for node in nodes)

    def index_of(self, node):
        """Row index of an unknown node (raises for forced/ground nodes)."""
        if node not in self._index:
            raise FormulationError(f"node {node!r} is not an unknown")
        return self._index[node]

    def element_stamp(self, name) -> Rank1Stamp:
        """The rank-1 contribution ``(g + s·c)·u·vᵀ`` of one element.

        ``u`` carries the element's row incidence over the unknown nodes
        (forced and ground rows are dropped, exactly as the assembly drops
        them) and ``v`` its column incidence; column entries on *forced* nodes
        fold into :attr:`~repro.linalg.rank1.Rank1Stamp.rhs_projection`, the
        incidence dotted with the forced voltages per unit drive.  A change
        ``Δy(s)`` of the element (with the Eq. (11) scale factors applied)
        therefore updates the reduced system as::

            (A + Δy·u·vᵀ) x = rhs − Δy·rhs_projection·u

        which :func:`repro.linalg.rank1.rank1_update_solve` handles in O(M²)
        from the baseline factors.

        Raises
        ------
        FormulationError
            For element types without a rank-1 admittance stamp (sources,
            inductors).
        """
        element = self.circuit[name]

        def row_incidence(positive, negative):
            vector = np.zeros(self.dimension)
            for node, sign in ((positive, 1.0), (negative, -1.0)):
                if node != GROUND and node not in self.forced:
                    vector[self._index[node]] = sign
            return vector

        def col_incidence(positive, negative):
            vector = np.zeros(self.dimension)
            projection = 0.0 + 0.0j
            for node, sign in ((positive, 1.0), (negative, -1.0)):
                if node == GROUND:
                    continue
                if node in self.forced:
                    projection += sign * self.forced[node]
                else:
                    vector[self._index[node]] = sign
            return vector, projection

        if isinstance(element, (Resistor, Conductor)):
            u = row_incidence(element.node_pos, element.node_neg)
            v, projection = col_incidence(element.node_pos, element.node_neg)
            return Rank1Stamp(u=u, v=v, conductance=element.conductance,
                              rhs_projection=projection)
        if isinstance(element, Capacitor):
            u = row_incidence(element.node_pos, element.node_neg)
            v, projection = col_incidence(element.node_pos, element.node_neg)
            return Rank1Stamp(u=u, v=v, capacitance=element.capacitance,
                              rhs_projection=projection)
        if isinstance(element, VCCS):
            u = row_incidence(element.node_pos, element.node_neg)
            v, projection = col_incidence(element.ctrl_pos, element.ctrl_neg)
            return Rank1Stamp(u=u, v=v, conductance=element.gm,
                              rhs_projection=projection)
        raise FormulationError(
            f"element {element.name!r} of type {type(element).__name__} does "
            "not stamp as a rank-1 admittance outer product"
        )

    # ------------------------------------------------------------------ #

    def __repr__(self):
        return (
            f"NodalFormulation(M={self.dimension}, drive={self.drive_kind!r}, "
            f"forced={list(self.forced)}, output={self.spec.output!r})"
        )


def build_nodal_formulation(circuit, spec):
    """Build a :class:`NodalFormulation` for ``circuit`` and ``spec``.

    The circuit must be in admittance form (conductances, capacitances, VCCS,
    independent sources); call
    :func:`repro.netlist.transform.to_admittance_form` first when it contains
    inductors.

    Raises
    ------
    FormulationError
        For non-admittance elements, floating voltage sources, or voltage
        sources that are neither inputs nor zero-valued.
    """
    if not isinstance(spec, TransferSpec):
        raise FormulationError("spec must be a TransferSpec")
    drive_kind, sources = spec.resolve(circuit)
    input_names = {element.name.lower() for element in sources}

    # Forced nodes: the non-ground terminal of every grounded voltage source.
    forced: Dict[str, float] = {}
    for element in circuit.elements_of_type(VoltageSource):
        if element.node_pos == GROUND:
            node, sign = element.node_neg, -1.0
        elif element.node_neg == GROUND:
            node, sign = element.node_pos, +1.0
        else:
            raise FormulationError(
                f"voltage source {element.name!r} is floating; the nodal "
                "formulation requires grounded voltage sources"
            )
        if element.name.lower() in input_names:
            coefficient = sign * element.value
        elif element.value == 0.0:
            coefficient = 0.0
        else:
            raise FormulationError(
                f"voltage source {element.name!r} is not an input of the "
                "transfer specification; set its AC value to 0 or include it "
                "in the inputs"
            )
        if node in forced and forced[node] != coefficient:
            raise FormulationError(
                f"node {node!r} is forced to conflicting voltages"
            )
        forced[node] = coefficient

    unknown_nodes: List[str] = [
        node for node in circuit.non_ground_nodes if node not in forced
    ]
    index = {node: i for i, node in enumerate(unknown_nodes)}
    forced_index = {node: i for i, node in enumerate(forced)}
    m = len(unknown_nodes)
    f_count = len(forced)

    conductance = SparseMatrix(m, m)
    capacitance = SparseMatrix(m, m)
    forced_conductance = SparseMatrix(m, max(f_count, 1))
    forced_capacitance = SparseMatrix(m, max(f_count, 1))
    current_injection = np.zeros(m, dtype=complex)

    def stamp(matrix, forced_matrix, row_node, col_node, value):
        """Add ``value`` at (row_node, col_node) of the full nodal matrix."""
        if value == 0.0 or row_node == GROUND or row_node in forced:
            return
        if col_node == GROUND:
            return
        row = index[row_node]
        if col_node in forced:
            forced_matrix.add(row, forced_index[col_node], value)
        else:
            matrix.add(row, index[col_node], value)

    def stamp_admittance(matrix, forced_matrix, node_a, node_b, value):
        stamp(matrix, forced_matrix, node_a, node_a, value)
        stamp(matrix, forced_matrix, node_b, node_b, value)
        stamp(matrix, forced_matrix, node_a, node_b, -value)
        stamp(matrix, forced_matrix, node_b, node_a, -value)

    for element in circuit:
        if isinstance(element, (Resistor, Conductor)):
            stamp_admittance(conductance, forced_conductance,
                             element.node_pos, element.node_neg,
                             element.conductance)
        elif isinstance(element, Capacitor):
            stamp_admittance(capacitance, forced_capacitance,
                             element.node_pos, element.node_neg,
                             element.capacitance)
        elif isinstance(element, VCCS):
            # Current gm (V(ctrl_pos) - V(ctrl_neg)) leaves node_pos and enters
            # node_neg.
            gm = element.gm
            for row_node, sign in ((element.node_pos, +1.0),
                                   (element.node_neg, -1.0)):
                stamp(conductance, forced_conductance, row_node,
                      element.ctrl_pos, sign * gm)
                stamp(conductance, forced_conductance, row_node,
                      element.ctrl_neg, -sign * gm)
        elif isinstance(element, CurrentSource):
            if element.name.lower() not in input_names and element.value != 0.0:
                raise FormulationError(
                    f"current source {element.name!r} is not an input of the "
                    "transfer specification; set its AC value to 0 or include "
                    "it in the inputs"
                )
            if element.name.lower() in input_names:
                # Current leaves node_pos, enters node_neg (SPICE convention).
                if element.node_pos != GROUND and element.node_pos not in forced:
                    current_injection[index[element.node_pos]] -= element.value
                if element.node_neg != GROUND and element.node_neg not in forced:
                    current_injection[index[element.node_neg]] += element.value
        elif isinstance(element, VoltageSource):
            pass  # already handled through the forced-node map
        elif isinstance(element, Inductor):
            raise FormulationError(
                f"inductor {element.name!r} present; apply "
                "to_admittance_form()/transform_inductors() first"
            )
        else:
            raise FormulationError(
                f"element {element.name!r} of type {type(element).__name__} is "
                "not supported by the nodal formulation"
            )

    output_pos, output_neg = spec.output_nodes()
    for node in (output_pos, output_neg):
        if node is None or node == GROUND:
            continue
        if node not in index and node not in forced_index:
            raise FormulationError(f"output node {node!r} is not in the circuit")

    return NodalFormulation(
        circuit=circuit,
        spec=spec,
        drive_kind=drive_kind,
        unknown_nodes=unknown_nodes,
        forced=forced,
        conductance=conductance,
        capacitance=capacitance,
        forced_conductance=forced_conductance,
        forced_capacitance=forced_capacitance,
        current_injection=current_injection,
        output_pos=output_pos,
        output_neg=output_neg,
    )
