"""Nodal admittance formulation used by the interpolation engine.

The polynomial-interpolation reference generator needs, at every interpolation
point ``s_k``, the values ``D(s_k)`` (a determinant) and ``N(s_k) = H(s_k)
D(s_k)`` (Eqs. 8–10 of the paper).  For the scale-factor bookkeeping of
Eq. (11) to be exact, every term of those determinants must be a product of
admittances — which holds for the pure nodal formulation of circuits made of
conductances, capacitances and VCCS elements.

* :mod:`repro.nodal.admittance` builds the ``G`` and ``C`` matrices (and the
  forced-node columns) from an admittance-form circuit,
* :mod:`repro.nodal.reduce` defines the :class:`~repro.nodal.reduce.TransferSpec`
  (which sources drive the circuit, which node — or node pair — is observed),
* :mod:`repro.nodal.sampler` evaluates numerator and denominator samples with
  frequency / conductance scaling and exponent tracking,
* :mod:`repro.nodal.batch` evaluates whole frequency sweeps at once, reusing
  the assembled ``G`` / ``C`` parts and the factorization structure across
  every point.
"""

from .admittance import NodalFormulation, build_nodal_formulation
from .batch import BatchSampler
from .reduce import TransferSpec
from .sampler import NetworkFunctionSampler, SampleValue

__all__ = [
    "NodalFormulation",
    "build_nodal_formulation",
    "BatchSampler",
    "TransferSpec",
    "NetworkFunctionSampler",
    "SampleValue",
]
