"""Batched evaluation of network-function samples over whole frequency sweeps.

The per-point path (:meth:`~repro.nodal.sampler.NetworkFunctionSampler.sample`)
rebuilds the scaled nodal matrix and re-derives a factorization from scratch
at every complex frequency ``s_k``.  Across a sweep all those matrices share
one structure — ``g·G + s_k·f·C`` with fixed ``G`` and ``C`` — so almost all
of that work can be hoisted out of the loop:

* the frequency-independent (``G``) and frequency-proportional (``C``) parts
  are assembled **once** (dense arrays below the dense cutoff, a cached
  sparsity structure above it),
* dense systems are factored with :func:`~repro.linalg.dense.batched_dense_lu`
  — one elimination loop vectorized over the whole stack of sweep points,
* sparse systems run the Markowitz pivot search once and replay the pivot
  order at every other point via
  :func:`~repro.linalg.lu.sparse_lu_refactor`, falling back to a fresh
  factorization only when a reused pivot becomes numerically unacceptable,
* right-hand sides and output voltages are evaluated as numpy batches.

The result is bit-compatible (dense path) or rounding-compatible (sparse
path) with the per-point sampler, which the equivalence tests in
``tests/test_batch_sweep.py`` and ``benchmarks/bench_batch_sweep.py`` assert.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..errors import InterpolationError, SingularMatrixError
from ..linalg.dense import batched_dense_lu, sweep_chunk_size
from ..linalg.lu import sparse_lu_reusing
from ..linalg.sparse import SparseMatrix, merged_structure
from .admittance import NodalFormulation, build_nodal_formulation
from .reduce import TransferSpec
from .sampler import SampleValue, _DENSE_CUTOFF, _scaled_value

__all__ = ["BatchSampler"]


class BatchSampler:
    """Samples ``N(s_k)`` and ``D(s_k)`` for a whole sweep in one pass.

    Parameters
    ----------
    circuit:
        Admittance-form circuit, or a ready-made
        :class:`~repro.nodal.admittance.NodalFormulation` (then ``spec`` may
        be omitted).
    spec:
        :class:`~repro.nodal.reduce.TransferSpec` naming drive and output, or
        a :class:`NodalFormulation` (mirroring
        :class:`~repro.nodal.sampler.NetworkFunctionSampler`).
    method:
        ``"auto"`` (dense at or below 150 unknowns), ``"dense"`` or
        ``"sparse"``.

    Attributes
    ----------
    factorization_count:
        Full (pivot-searching) factorizations performed.
    refactorization_count:
        Structure-reusing refactorizations performed (sparse path only).
    """

    def __init__(self, circuit, spec=None, method="auto"):
        if isinstance(circuit, NodalFormulation) and spec is None:
            self.formulation = circuit
        elif isinstance(spec, NodalFormulation):
            self.formulation = spec
        elif isinstance(spec, TransferSpec):
            self.formulation = build_nodal_formulation(circuit, spec)
        else:
            raise InterpolationError(
                "spec must be a TransferSpec or NodalFormulation"
            )
        if method not in ("auto", "dense", "sparse"):
            raise InterpolationError(f"unknown factorization method {method!r}")
        self.method = method
        self.factorization_count = 0
        self.refactorization_count = 0
        self._sparse_pattern = None
        self._sparse_structure = None

    # ------------------------------------------------------------------ #

    @property
    def dimension(self):
        """Number of unknown node voltages."""
        return self.formulation.dimension

    def _use_dense(self):
        if self.method == "dense":
            return True
        if self.method == "sparse":
            return False
        return self.formulation.dimension <= _DENSE_CUTOFF

    # ------------------------------------------------------------------ #

    def sample_batch(self, points, conductance_scale=1.0,
                     frequency_scale=1.0) -> List[SampleValue]:
        """Evaluate numerator and denominator at every point of ``points``.

        Results are returned in input order, one
        :class:`~repro.nodal.sampler.SampleValue` per point, exactly as the
        per-point sampler would produce them.

        Raises
        ------
        SingularMatrixError
            When the scaled matrix is singular at some sweep point (matching
            the per-point path, which raises from the factorization).
        """
        s = np.asarray(list(points), dtype=complex)
        if s.size == 0:
            return []
        if self._use_dense():
            return self._sample_batch_dense(s, conductance_scale,
                                            frequency_scale)
        return self._sample_batch_sparse(s, conductance_scale, frequency_scale)

    def transfer_values(self, points) -> np.ndarray:
        """``H(s_k)`` for every point, as a complex array in input order."""
        samples = self.sample_batch(points)
        return np.asarray([sample.transfer() for sample in samples],
                          dtype=complex)

    def frequency_response(self, frequencies) -> np.ndarray:
        """``H(j·2π·f)`` for an array of frequencies in hertz."""
        frequencies = np.asarray(frequencies, dtype=float)
        return self.transfer_values(2j * math.pi * frequencies)

    # ------------------------------------------------------------------ #
    # dense path: one vectorized LU over the whole stack
    # ------------------------------------------------------------------ #

    def _sample_batch_dense(self, s, conductance_scale, frequency_scale):
        # Long sweeps are processed in chunks so the assembled (K, M, M)
        # stack never outgrows a fixed memory budget.
        chunk = sweep_chunk_size(self.formulation.dimension)
        samples = []
        for start in range(0, len(s), chunk):
            samples.extend(self._sample_chunk_dense(
                s[start:start + chunk], conductance_scale, frequency_scale,
                offset=start,
            ))
        return samples

    def _sample_chunk_dense(self, s, conductance_scale, frequency_scale,
                            offset=0):
        formulation = self.formulation
        stack = formulation.assemble_batch(s, conductance_scale,
                                           frequency_scale)
        # The O(M^3) elimination runs once, vectorized over the whole chunk;
        # determinant accumulation and substitution (O(M) / O(M^2) per point)
        # go through scalar DenseLU views so every sample is bit-for-bit the
        # one the per-point path produces.
        factorization = batched_dense_lu(stack, overwrite=True)
        self.factorization_count += len(s)
        if factorization.singular.any():
            index = int(np.argmax(factorization.singular))
            raise SingularMatrixError(
                f"matrix is singular at sweep point {offset + index} "
                f"(s={complex(s[index])!r})"
            )
        forced_output = formulation.output_is_forced()
        if forced_output:
            constant = formulation.output_voltage(
                np.zeros(formulation.dimension, dtype=complex)
            )
        samples = []
        for k, point in enumerate(s):
            member = factorization.member(k)
            det_mantissa, det_exponent = member.determinant_mantissa_exponent()
            if det_mantissa == 0:
                samples.append(SampleValue(s=complex(point),
                                           numerator=(0.0 + 0.0j, 0),
                                           denominator=(0.0 + 0.0j, 0)))
                continue
            if forced_output:
                transfer = constant
            else:
                rhs = formulation.rhs(point, conductance_scale,
                                      frequency_scale)
                transfer = formulation.output_voltage(member.solve(rhs))
            samples.append(SampleValue(
                s=complex(point),
                numerator=_scaled_value(transfer * det_mantissa, det_exponent),
                denominator=(det_mantissa, det_exponent),
            ))
        return samples

    # ------------------------------------------------------------------ #
    # sparse path: factor once, refactor everywhere else
    # ------------------------------------------------------------------ #

    def _structure(self):
        """Cached union sparsity structure: keys plus G / C value arrays."""
        if self._sparse_structure is None:
            self._sparse_structure = merged_structure(
                self.formulation.conductance, self.formulation.capacitance
            )
        return self._sparse_structure

    def _factor_sparse(self, matrix):
        factorization, self._sparse_pattern, refactored = sparse_lu_reusing(
            matrix, self._sparse_pattern
        )
        if refactored:
            self.refactorization_count += 1
        else:
            self.factorization_count += 1
        return factorization

    def _sample_batch_sparse(self, s, conductance_scale, frequency_scale):
        formulation = self.formulation
        m = formulation.dimension
        keys, g_values, c_values = self._structure()
        forced_output = formulation.output_is_forced()
        if forced_output:
            constant = formulation.output_voltage(np.zeros(m, dtype=complex))
        rhs_stack = None
        if not forced_output:
            rhs_stack = formulation.rhs_batch(s, conductance_scale,
                                              frequency_scale)
        samples = []
        for k, point in enumerate(s):
            values = (conductance_scale * g_values
                      + (complex(point) * frequency_scale) * c_values)
            matrix = SparseMatrix.from_entries(m, m, zip(keys,
                                                         values.tolist()))
            factorization = self._factor_sparse(matrix)
            det_mantissa, det_exponent = (
                factorization.determinant_mantissa_exponent()
            )
            if det_mantissa == 0:
                samples.append(SampleValue(s=complex(point),
                                           numerator=(0.0 + 0.0j, 0),
                                           denominator=(0.0 + 0.0j, 0)))
                continue
            if forced_output:
                transfer = constant
            else:
                solution = factorization.solve(rhs_stack[k])
                transfer = formulation.output_voltage(solution)
            samples.append(SampleValue(
                s=complex(point),
                numerator=_scaled_value(transfer * det_mantissa, det_exponent),
                denominator=(det_mantissa, det_exponent),
            ))
        return samples

    # ------------------------------------------------------------------ #

    def __repr__(self):
        return (
            f"BatchSampler(M={self.dimension}, method={self.method!r}, "
            f"factorizations={self.factorization_count}, "
            f"refactorizations={self.refactorization_count})"
        )
