"""Batched evaluation of network-function samples over whole frequency sweeps.

The per-point path (:meth:`~repro.nodal.sampler.NetworkFunctionSampler.sample`)
rebuilds the scaled nodal matrix and re-derives a factorization from scratch
at every complex frequency ``s_k``.  Across a sweep all those matrices share
one structure — ``g·G + s_k·f·C`` with fixed ``G`` and ``C`` — so the
:class:`BatchSampler` delegates the whole factor-hoisting strategy to the
shared sweep engine (:class:`~repro.engine.sweep.SweepEngine`):

* the frequency-independent (``G``) and frequency-proportional (``C``) parts
  are assembled **once** (dense arrays at or below the configured cutoff, a
  cached sparsity structure above it),
* dense systems are factored with :func:`~repro.linalg.dense.batched_dense_lu`
  — one elimination loop vectorized over the whole stack of sweep points,
* sparse systems run the Markowitz pivot search once and replay the pivot
  order at every other point via numeric refactorization, falling back to a
  fresh factorization only when a reused pivot becomes numerically
  unacceptable,
* right-hand sides and output voltages are evaluated as numpy batches.

What stays here is the *sampling* semantics of Eqs. (7)–(10): determinant
mantissa/exponent extraction, forced-output short-circuits and the
``N(s_k) = H(s_k)·D(s_k)`` bookkeeping.  The result is bit-compatible (dense
path) or rounding-compatible (sparse path) with the per-point sampler, which
the equivalence tests in ``tests/test_batch_sweep.py`` and
``benchmarks/bench_batch_sweep.py`` assert.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..engine.sweep import SweepEngine
from ..errors import InterpolationError
from .admittance import NodalFormulation, build_nodal_formulation
from .reduce import TransferSpec
from .sampler import SampleValue, _scaled_value

__all__ = ["BatchSampler"]


class BatchSampler:
    """Samples ``N(s_k)`` and ``D(s_k)`` for a whole sweep in one pass.

    Parameters
    ----------
    circuit:
        Admittance-form circuit, or a ready-made
        :class:`~repro.nodal.admittance.NodalFormulation` (then ``spec`` may
        be omitted).
    spec:
        :class:`~repro.nodal.reduce.TransferSpec` naming drive and output, or
        a :class:`NodalFormulation` (mirroring
        :class:`~repro.nodal.sampler.NetworkFunctionSampler`).
    method:
        ``"auto"`` (dense at or below the configured
        :func:`~repro.linalg.config.dense_cutoff`), ``"dense"`` or
        ``"sparse"``.

    Attributes
    ----------
    factorization_count:
        Full (pivot-searching) factorizations performed.
    refactorization_count:
        Structure-reusing refactorizations performed (sparse path only).
    """

    def __init__(self, circuit, spec=None, method="auto"):
        if isinstance(circuit, NodalFormulation) and spec is None:
            self.formulation = circuit
        elif isinstance(spec, NodalFormulation):
            self.formulation = spec
        elif isinstance(spec, TransferSpec):
            self.formulation = build_nodal_formulation(circuit, spec)
        else:
            raise InterpolationError(
                "spec must be a TransferSpec or NodalFormulation"
            )
        if method not in ("auto", "dense", "sparse"):
            raise InterpolationError(f"unknown factorization method {method!r}")
        self.method = method
        #: The engine persists across calls, so the sparse pivot pattern (and
        #: the cached matrix structure) carries from one sweep to the next.
        self._engine = SweepEngine(self.formulation, method=method)

    # ------------------------------------------------------------------ #

    @property
    def dimension(self):
        """Number of unknown node voltages."""
        return self.formulation.dimension

    @property
    def factorization_count(self):
        """Full (pivot-searching) factorizations performed by the engine."""
        return self._engine.factorization_count

    @property
    def refactorization_count(self):
        """Structure-reusing refactorizations performed (sparse path only)."""
        return self._engine.refactorization_count

    # ------------------------------------------------------------------ #

    def sample_batch(self, points, conductance_scale=1.0,
                     frequency_scale=1.0) -> List[SampleValue]:
        """Evaluate numerator and denominator at every point of ``points``.

        Results are returned in input order, one
        :class:`~repro.nodal.sampler.SampleValue` per point, exactly as the
        per-point sampler would produce them.

        Raises
        ------
        SingularMatrixError
            When the scaled matrix is singular at some sweep point (matching
            the per-point path, which raises from the factorization).
        """
        s = np.asarray(list(points), dtype=complex)
        if s.size == 0:
            return []
        if self._engine.is_dense:
            return self._sample_batch_dense(s, conductance_scale,
                                            frequency_scale)
        return self._sample_batch_sparse(s, conductance_scale, frequency_scale)

    def transfer_values(self, points) -> np.ndarray:
        """``H(s_k)`` for every point, as a complex array in input order."""
        samples = self.sample_batch(points)
        return np.asarray([sample.transfer() for sample in samples],
                          dtype=complex)

    def frequency_response(self, frequencies) -> np.ndarray:
        """``H(j·2π·f)`` for an array of frequencies in hertz."""
        frequencies = np.asarray(frequencies, dtype=float)
        return self.transfer_values(2j * math.pi * frequencies)

    # ------------------------------------------------------------------ #
    # dense path: the engine's vectorized chunk LU, scalar member views
    # ------------------------------------------------------------------ #

    def _sample_batch_dense(self, s, conductance_scale, frequency_scale):
        formulation = self.formulation
        forced = self._forced_transfer()
        samples = []
        for start, factorization in self._engine.dense_chunks(
                s, conductance_scale, frequency_scale):
            block = s[start:start + factorization.batch]
            # The O(M^3) elimination ran once, vectorized over the chunk;
            # determinant accumulation and substitution (O(M) / O(M^2) per
            # point) go through scalar DenseLU views so every sample is
            # bit-for-bit the one the per-point path produces.
            for k, point in enumerate(block):
                member = factorization.member(k)
                det = member.determinant_mantissa_exponent()
                if forced is None:
                    samples.append(self._make_sample(
                        point, det, solve=member.solve,
                        conductance_scale=conductance_scale,
                        frequency_scale=frequency_scale))
                else:
                    samples.append(self._make_sample(point, det,
                                                     transfer=forced))
        return samples

    def _forced_transfer(self):
        """The constant output voltage when it is forced, else ``None``."""
        if not self.formulation.output_is_forced():
            return None
        return self.formulation.output_voltage(
            np.zeros(self.formulation.dimension, dtype=complex))

    # ------------------------------------------------------------------ #
    # sparse path: factor once, refactor everywhere else
    # ------------------------------------------------------------------ #

    def _sample_batch_sparse(self, s, conductance_scale, frequency_scale):
        formulation = self.formulation
        forced = self._forced_transfer()
        rhs_stack = None
        if forced is None:
            rhs_stack = formulation.rhs_batch(s, conductance_scale,
                                              frequency_scale)
        samples = []
        for k, factorization in self._engine.sparse_factors(
                s, conductance_scale, frequency_scale):
            det = factorization.determinant_mantissa_exponent()
            if forced is None:
                samples.append(self._make_sample(s[k], det,
                                                 solve=factorization.solve,
                                                 rhs=rhs_stack[k]))
            else:
                samples.append(self._make_sample(s[k], det, transfer=forced))
        return samples

    # ------------------------------------------------------------------ #

    def _make_sample(self, point, det, transfer=None, solve=None, rhs=None,
                     conductance_scale=1.0, frequency_scale=1.0):
        """One :class:`SampleValue` from a determinant plus transfer source.

        Either ``transfer`` is the (forced) output voltage directly, or
        ``solve`` is a per-point solver applied to ``rhs`` (assembled on
        demand from the scales when not supplied) — the right-hand side is
        only built once the determinant is known to be non-zero, matching
        the per-point sampler's short-circuit.
        """
        det_mantissa, det_exponent = det
        if det_mantissa == 0:
            return SampleValue(s=complex(point), numerator=(0.0 + 0.0j, 0),
                               denominator=(0.0 + 0.0j, 0))
        if transfer is None:
            if rhs is None:
                rhs = self.formulation.rhs(point, conductance_scale,
                                           frequency_scale)
            transfer = self.formulation.output_voltage(solve(rhs))
        return SampleValue(
            s=complex(point),
            numerator=_scaled_value(transfer * det_mantissa, det_exponent),
            denominator=(det_mantissa, det_exponent),
        )

    # ------------------------------------------------------------------ #

    def __repr__(self):
        return (
            f"BatchSampler(M={self.dimension}, method={self.method!r}, "
            f"factorizations={self.factorization_count}, "
            f"refactorizations={self.refactorization_count})"
        )
