"""Transfer-function specification for the nodal formulation.

A :class:`TransferSpec` names the excitation (one or more grounded voltage
sources, or one or more current sources — not both) and the observed output
(a node voltage or a differential pair).  The nodal builder uses it to decide
which nodes are *forced* (removed from the unknowns, contributing to the
right-hand side) and which entry of the solution is the output.

Examples
--------
Single-ended voltage gain ``V(out) / V(in)`` driven by source ``Vin``::

    TransferSpec(inputs=["Vin"], output="out")

Differential voltage gain of an OTA driven antisymmetrically by ``Vip`` (+1/2)
and ``Vim`` (−1/2), observed at ``vo``::

    TransferSpec(inputs=["Vip", "Vim"], output="vo")

(The drive weights come from the sources' AC values.)
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import FormulationError, UnknownElementError
from ..netlist.circuit import Circuit
from ..netlist.elements import GROUND, CurrentSource, VoltageSource

__all__ = ["TransferSpec"]


@dataclasses.dataclass
class TransferSpec:
    """Which excitation and which output define the network function.

    Attributes
    ----------
    inputs:
        Names of the driving sources.  All of them must be independent voltage
        sources (voltage drive) or all independent current sources (current
        drive).  Voltage sources must have their negative terminal grounded.
    output:
        Output node name, or a ``(positive, negative)`` pair for a differential
        output.
    """

    inputs: Sequence[str]
    output: Union[str, Tuple[str, str]]

    def __post_init__(self):
        if isinstance(self.inputs, str):
            self.inputs = [self.inputs]
        self.inputs = list(self.inputs)
        if not self.inputs:
            raise FormulationError("TransferSpec needs at least one input source")

    # ------------------------------------------------------------------ #

    def output_nodes(self) -> Tuple[str, Optional[str]]:
        """Return ``(positive_node, negative_node_or_None)``."""
        if isinstance(self.output, (tuple, list)):
            if len(self.output) != 2:
                raise FormulationError("differential output needs exactly two nodes")
            return str(self.output[0]), str(self.output[1])
        return str(self.output), None

    def resolve(self, circuit: Circuit):
        """Validate the spec against ``circuit`` and classify the drive.

        Returns
        -------
        tuple
            ``(kind, sources)`` where ``kind`` is ``"voltage"`` or
            ``"current"`` and ``sources`` is the list of source elements.

        Raises
        ------
        FormulationError
            If sources are of mixed type, a voltage source is floating, or the
            output node does not exist.
        UnknownElementError
            If an input source name is not present in the circuit.
        """
        sources = []
        for name in self.inputs:
            element = circuit.get(name)
            if element is None:
                raise UnknownElementError(f"input source {name!r} not in circuit")
            sources.append(element)

        if all(isinstance(s, VoltageSource) for s in sources):
            kind = "voltage"
            for source in sources:
                if source.node_neg != GROUND and source.node_pos != GROUND:
                    raise FormulationError(
                        f"voltage source {source.name!r} must have one terminal "
                        "grounded for the nodal formulation"
                    )
        elif all(isinstance(s, CurrentSource) for s in sources):
            kind = "current"
        else:
            raise FormulationError(
                "all input sources must be of the same type (all voltage or "
                "all current sources)"
            )

        pos, neg = self.output_nodes()
        for node in (pos, neg):
            if node is None:
                continue
            if node != GROUND and not circuit.has_node(node):
                raise FormulationError(f"output node {node!r} not in circuit")
        return kind, sources

    def describe(self):
        """Human-readable one-line description."""
        pos, neg = self.output_nodes()
        output = pos if neg is None else f"{pos}-{neg}"
        return f"H(s) = V({output}) / drive({', '.join(self.inputs)})"
