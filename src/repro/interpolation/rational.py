"""Rational network functions ``H(s) = N(s) / D(s)`` and Bode evaluation.

The numerical reference produced by the interpolation engine is a pair of
extended-range polynomials; :class:`RationalFunction` combines them and
provides the frequency-domain views used by Fig. 2 of the paper (magnitude and
phase over a log-frequency sweep) and by the SBG/SDG error-control consumers
(evaluation at arbitrary ``s``).
"""

from __future__ import annotations

import cmath
import math
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..errors import InterpolationError
from .polynomial import Polynomial

__all__ = ["RationalFunction"]


class RationalFunction:
    """A ratio of two extended-range polynomials in ``s``."""

    def __init__(self, numerator, denominator):
        if not isinstance(numerator, Polynomial):
            numerator = Polynomial(numerator)
        if not isinstance(denominator, Polynomial):
            denominator = Polynomial(denominator)
        if denominator.is_zero():
            raise InterpolationError("rational function with zero denominator")
        self.numerator = numerator
        self.denominator = denominator

    # ------------------------------------------------------------------ #

    @property
    def degree(self) -> Tuple[int, int]:
        """``(numerator degree, denominator degree)``."""
        return self.numerator.degree, self.denominator.degree

    def evaluate(self, s) -> complex:
        """``H(s)`` as a plain complex number.

        The numerator and denominator exponents largely cancel, so the ratio
        is representable even when the individual polynomial values are not.
        """
        n_mantissa, n_exponent = self.numerator.evaluate(s)
        d_mantissa, d_exponent = self.denominator.evaluate(s)
        if d_mantissa == 0:
            raise ZeroDivisionError(f"denominator is zero at s={s!r}")
        if n_mantissa == 0:
            return 0.0 + 0.0j
        ratio = n_mantissa / d_mantissa
        shift = n_exponent - d_exponent
        if shift > 300:
            return ratio * math.inf
        if shift < -300:
            return 0.0 + 0.0j
        return ratio * 10.0**shift

    def evaluate_many(self, s_values) -> np.ndarray:
        """Vectorized :meth:`evaluate` over an array of complex points.

        Numerator and denominator are evaluated with the batched polynomial
        path (:meth:`~repro.interpolation.polynomial.Polynomial.evaluate_many`,
        which runs on each polynomial's compiled coefficient arrays) and
        combined per point with the same exponent-cancelling rule as the
        scalar evaluation.
        """
        s = np.asarray(s_values, dtype=complex)
        n_mantissas, n_exponents = self.numerator.evaluate_many(s)
        d_mantissas, d_exponents = self.denominator.evaluate_many(s)
        if (d_mantissas == 0).any():
            index = np.unravel_index(int(np.argmax(d_mantissas == 0)), s.shape)
            raise ZeroDivisionError(
                f"denominator is zero at s={complex(s[index])!r}"
            )
        ratio = n_mantissas / d_mantissas
        shift = n_exponents - d_exponents
        values = ratio * 10.0 ** np.clip(shift, -300, 300).astype(float)
        overflow = shift > 300
        if overflow.any():
            values[overflow] = ratio[overflow] * math.inf
        values[(shift < -300) | (n_mantissas == 0)] = 0.0 + 0.0j
        return values

    def __call__(self, s) -> complex:
        return self.evaluate(s)

    def dc_gain(self) -> complex:
        """``H(0)``."""
        return self.evaluate(0.0)

    # ------------------------------------------------------------------ #
    # frequency-domain views
    # ------------------------------------------------------------------ #

    def frequency_response(self, frequencies) -> np.ndarray:
        """``H(j 2π f)`` for an array of frequencies in hertz (batched)."""
        frequencies = np.asarray(frequencies, dtype=float)
        return self.evaluate_many(2j * math.pi * frequencies)

    def magnitude_db(self, frequencies) -> np.ndarray:
        """Magnitude in dB over ``frequencies`` (hertz)."""
        response = self.frequency_response(frequencies)
        magnitude = np.abs(response)
        magnitude[magnitude == 0.0] = np.finfo(float).tiny
        return 20.0 * np.log10(magnitude)

    def phase_deg(self, frequencies, unwrap=True) -> np.ndarray:
        """Phase in degrees over ``frequencies`` (hertz), unwrapped by default."""
        response = self.frequency_response(frequencies)
        phase = np.angle(response)
        if unwrap:
            phase = np.unwrap(phase)
        return np.degrees(phase)

    def bode(self, frequencies) -> Tuple[np.ndarray, np.ndarray]:
        """``(magnitude_db, phase_deg)`` over ``frequencies`` (hertz)."""
        response = self.frequency_response(frequencies)
        magnitude = np.abs(response)
        magnitude[magnitude == 0.0] = np.finfo(float).tiny
        phase = np.degrees(np.unwrap(np.angle(response)))
        return 20.0 * np.log10(magnitude), phase

    def unity_gain_frequency(self, f_min=1.0, f_max=1e12, points=2000):
        """Approximate frequency (Hz) where ``|H|`` crosses unity, or None."""
        frequencies = np.logspace(math.log10(f_min), math.log10(f_max), points)
        magnitude = np.abs(self.frequency_response(frequencies))
        above = magnitude >= 1.0
        for index in range(len(frequencies) - 1):
            if above[index] and not above[index + 1]:
                # log-linear interpolation of the crossing
                x0, x1 = math.log10(frequencies[index]), math.log10(frequencies[index + 1])
                y0, y1 = math.log10(magnitude[index]), math.log10(magnitude[index + 1])
                if y0 == y1:
                    return frequencies[index]
                t = (0.0 - y0) / (y1 - y0)
                return 10.0 ** (x0 + t * (x1 - x0))
        return None

    def __repr__(self):
        n_degree, d_degree = self.degree
        return f"RationalFunction(numerator degree {n_degree}, denominator degree {d_degree})"
