"""The adaptive scaling algorithm (Section 3 of the paper).

The algorithm performs successive polynomial interpolations.  Each one uses a
pair of frequency / conductance scale factors chosen from the previous results
so that its *valid coefficient region* (the coefficients above the round-off
error level) starts right where the already-covered region ends — minimal
overlap, minimal number of interpolations.  Iterations continue until every
coefficient of the polynomial is either determined or shown to be negligible.

Step by step (for one polynomial, numerator or denominator):

1. First interpolation with the heuristic factors ``f = 1/mean(C)``,
   ``g = 1/mean(G)`` — the widest valid region (Sec. 3.2).
2. Detect the valid region via the error level (Eq. 12); denormalize and store
   its coefficients (Eq. 11).
3. While uncovered coefficients remain:
   a. towards higher powers — update the factors with Eqs. (13)–(14),
   b. towards lower powers — Eq. (15),
   c. for a gap between two covered regions — geometric-mean factors (Eq. 16),
   and interpolate again.  When enabled, the problem is deflated with Eq. (17)
   so later iterations need fewer points.
4. If a direction stalls repeatedly (no new valid coefficients even after
   increasing the separation ``r``), the remaining coefficients there are
   below the error level for every scaling — they influence the polynomial
   less than the round-off noise and are recorded as *negligible* (Sec. 3.3).
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConvergenceError, InterpolationError
from ..xfloat import XFloat
from .dft import inverse_dft_scaled
from .points import unit_circle_points
from .polynomial import Polynomial
from .reduction import deflate_samples
from .regions import ValidRegion, find_valid_region
from .scaling import (
    ScaleFactors,
    backward_update,
    denormalize_coefficients,
    forward_update,
    gap_update,
    initial_scale_factors,
)

__all__ = [
    "AdaptiveOptions",
    "IterationRecord",
    "AdaptiveResult",
    "AdaptiveScalingInterpolator",
]


@dataclasses.dataclass
class AdaptiveOptions:
    """Tunable knobs of the adaptive scaling loop.

    Attributes
    ----------
    significant_digits:
        σ — significant digits required of every coefficient (Eq. 12 uses 6).
    tuning_r:
        The paper's tuning factor ``r`` controlling the overlap between
        successive valid regions (0 keeps the regions just touching).
    max_iterations:
        Hard cap on the number of interpolations.
    deflation:
        Apply the Eq. (17) problem-size reduction when possible.
    single_scale:
        Ablation switch: put the whole ratio update into the frequency factor
        instead of splitting it with the conductance factor (Sec. 3.2 warns
        this produces >1e18 factors on large circuits).
    patience:
        Number of stalled attempts (per direction) before the remaining
        coefficients are declared negligible.
    initial_factors:
        Override the first-iteration heuristic factors.
    num_points:
        Override the degree bound + 1 point count of the full interpolations.
    dft_method:
        ``"fft"`` or ``"direct"``.
    """

    significant_digits: int = 6
    tuning_r: float = 0.0
    max_iterations: int = 40
    deflation: bool = True
    single_scale: bool = False
    patience: int = 2
    initial_factors: Optional[ScaleFactors] = None
    num_points: Optional[int] = None
    dft_method: str = "fft"


@dataclasses.dataclass
class IterationRecord:
    """Bookkeeping for one interpolation of the adaptive loop."""

    index: int
    direction: str
    factors: ScaleFactors
    ratio_q: Optional[float]
    num_points: int
    deflated: bool
    offset: int
    region_start: Optional[int]
    region_end: Optional[int]
    new_indices: List[int]
    covered_after: int
    elapsed_seconds: float
    consistency_log10_deviation: float = 0.0


@dataclasses.dataclass
class AdaptiveResult:
    """Final outcome of the adaptive scaling interpolation."""

    kind: str
    degree_bound: int
    admittance_order: int
    coefficients: List[XFloat]
    status: List[str]
    iterations: List[IterationRecord]
    converged: bool
    total_samples: int

    def polynomial(self) -> Polynomial:
        """The interpolated polynomial (negligible coefficients are zero)."""
        return Polynomial(self.coefficients)

    def coefficient(self, power) -> XFloat:
        """Coefficient of ``s**power``."""
        if power < 0 or power > self.degree_bound:
            return XFloat.zero()
        return self.coefficients[power]

    def valid_count(self):
        """Number of coefficients determined above the error level."""
        return sum(1 for status in self.status if status == "valid")

    def negligible_count(self):
        """Number of coefficients shown to be below the error level."""
        return sum(1 for status in self.status if status == "negligible")

    def iteration_count(self):
        """Number of interpolations performed."""
        return len(self.iterations)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.kind}: degree bound {self.degree_bound}, "
            f"{self.valid_count()} valid + {self.negligible_count()} negligible "
            f"coefficients in {self.iteration_count()} interpolations "
            f"({self.total_samples} matrix factorizations)"
        )


class AdaptiveScalingInterpolator:
    """Runs the adaptive scaling algorithm for one polynomial.

    Parameters
    ----------
    sampler:
        A :class:`~repro.nodal.sampler.NetworkFunctionSampler` built for the
        circuit / transfer function of interest.
    kind:
        ``"numerator"`` or ``"denominator"``.
    options:
        :class:`AdaptiveOptions`; defaults are the paper's settings.
    """

    def __init__(self, sampler, kind="denominator", options=None):
        if kind not in ("numerator", "denominator"):
            raise InterpolationError(f"unknown polynomial kind {kind!r}")
        self.sampler = sampler
        self.kind = kind
        self.options = options or AdaptiveOptions()
        formulation = sampler.formulation
        self.admittance_order = (
            formulation.denominator_admittance_order
            if kind == "denominator"
            else formulation.numerator_admittance_order
        )

    # ------------------------------------------------------------------ #

    def run(self) -> AdaptiveResult:
        """Execute the adaptive loop and return the assembled coefficients."""
        options = self.options
        if options.num_points is not None:
            degree_bound = options.num_points - 1
        else:
            degree_bound = self.sampler.max_polynomial_degree()
        if degree_bound < 0:
            raise InterpolationError("degree bound must be non-negative")

        known: Dict[int, XFloat] = {}
        known_region_info: Dict[int, Tuple[ScaleFactors, float]] = {}
        negligible: set = set()
        iterations: List[IterationRecord] = []
        total_samples = 0

        factors = options.initial_factors or initial_scale_factors(
            self.sampler.formulation.circuit
        )
        direction = "initial"
        ratio_q: Optional[float] = None
        forward_stall = 0
        backward_stall = 0
        gap_stall = 0

        for iteration_index in range(options.max_iterations):
            targets = [power for power in range(degree_bound + 1)
                       if power not in known and power not in negligible]
            if not targets:
                break

            if iteration_index > 0:
                factors, direction, ratio_q = self._next_factors(
                    known, known_region_info, negligible, targets, degree_bound,
                    forward_stall, backward_stall, gap_stall,
                )

            started = time.perf_counter()
            record = self._interpolate_once(
                iteration_index, direction, factors, ratio_q, known, negligible,
                degree_bound,
            )
            record.elapsed_seconds = time.perf_counter() - started
            total_samples += record.num_points
            iterations.append(record)

            # Harvest newly valid coefficients.
            new_found = bool(record.new_indices)
            for power in record.new_indices:
                known_region_info[power] = (factors,
                                            record.log10_by_power[power])
            for power, value in record.new_values.items():
                known[power] = value

            # Stall bookkeeping per direction.
            if direction == "forward":
                forward_stall = 0 if new_found else forward_stall + 1
            elif direction == "backward":
                backward_stall = 0 if new_found else backward_stall + 1
            elif direction == "gap":
                gap_stall = 0 if new_found else gap_stall + 1
            elif not new_found:
                forward_stall += 1

            # Declare negligible coefficients once a direction is exhausted.
            covered = set(known) | negligible
            if covered:
                top = max(known) if known else -1
                bottom = min(known) if known else degree_bound + 1
                if forward_stall >= options.patience:
                    for power in range(top + 1, degree_bound + 1):
                        if power not in known:
                            negligible.add(power)
                    forward_stall = 0
                if backward_stall >= options.patience:
                    for power in range(0, bottom):
                        if power not in known:
                            negligible.add(power)
                    backward_stall = 0
                if gap_stall >= options.patience:
                    for power in targets:
                        if power not in known:
                            negligible.add(power)
                    gap_stall = 0

        targets = [power for power in range(degree_bound + 1)
                   if power not in known and power not in negligible]
        converged = not targets

        coefficients = []
        status = []
        for power in range(degree_bound + 1):
            if power in known:
                coefficients.append(known[power])
                status.append("valid")
            elif power in negligible:
                coefficients.append(XFloat.zero())
                status.append("negligible")
            else:
                coefficients.append(XFloat.zero())
                status.append("unresolved")

        return AdaptiveResult(
            kind=self.kind,
            degree_bound=degree_bound,
            admittance_order=self.admittance_order,
            coefficients=coefficients,
            status=status,
            iterations=iterations,
            converged=converged,
            total_samples=total_samples,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _apply_ratio(self, factors, q):
        """Apply the per-power ratio ``q`` (simultaneous or single-factor)."""
        if self.options.single_scale:
            return ScaleFactors(factors.frequency * q, factors.conductance)
        return factors.with_ratio_applied(q)

    def _next_factors(self, known, known_region_info, negligible, targets,
                      degree_bound, forward_stall, backward_stall, gap_stall):
        """Choose the direction and scale factors of the next interpolation."""
        options = self.options
        top = max(known)
        bottom = min(known)

        def region_anchor(anchor_power, extreme):
            """Factors + log10 magnitude info of the region containing ``anchor_power``."""
            factors, anchor_log10 = known_region_info[anchor_power]
            # The region maximum: the known power with the same factors having
            # the largest normalized magnitude.
            best_power, best_log10 = anchor_power, anchor_log10
            for power, (other_factors, log10_value) in known_region_info.items():
                if other_factors is factors and log10_value > best_log10:
                    best_power, best_log10 = power, log10_value
            return factors, anchor_log10, best_power, best_log10

        if any(power > top for power in targets):
            factors, anchor_log10, max_power, max_log10 = region_anchor(top, "end")
            effective_r = options.tuning_r + 3.0 * forward_stall
            updated, q = forward_update(factors, top, anchor_log10, max_power,
                                        max_log10, effective_r)
            if self.options.single_scale:
                updated = self._apply_ratio(factors, q)
            return updated, "forward", q

        if any(power < bottom for power in targets):
            factors, anchor_log10, max_power, max_log10 = region_anchor(bottom, "start")
            effective_r = options.tuning_r + 3.0 * backward_stall
            updated, q = backward_update(factors, bottom, anchor_log10, max_power,
                                         max_log10, effective_r)
            if self.options.single_scale:
                updated = self._apply_ratio(factors, q)
            return updated, "backward", q

        # Remaining targets are gaps between covered coefficients: use the
        # geometric mean of the factors of the neighbouring regions (Eq. 16).
        gap_power = min(targets)
        below = max(power for power in known if power < gap_power)
        above = min(power for power in known if power > gap_power)
        factors_low, __ = known_region_info[below]
        factors_high, __ = known_region_info[above]
        updated = gap_update(factors_low, factors_high)
        if gap_stall:
            # Nudge the gap factors towards the lower region when retrying.
            updated = gap_update(factors_low, updated)
        return updated, "gap", None

    def _interpolate_once(self, iteration_index, direction, factors, ratio_q,
                          known, negligible, degree_bound) -> IterationRecord:
        """Perform one interpolation; returns the iteration record.

        The record's ``new_values`` / ``new_indices`` / ``log10_by_power``
        attributes are attached dynamically for the caller to harvest.
        """
        options = self.options
        covered = set(known) | set(negligible)
        uncovered = [power for power in range(degree_bound + 1)
                     if power not in covered]
        first_unknown = min(uncovered)
        last_unknown = max(uncovered)

        use_deflation = (
            options.deflation
            and (first_unknown > 0 or last_unknown < degree_bound)
            and bool(known)
        )
        if use_deflation:
            num_points = last_unknown - first_unknown + 1
            offset = first_unknown
        else:
            num_points = degree_bound + 1
            offset = 0

        points = unit_circle_points(num_points)
        samples = self.sampler.sample_many(points, factors.conductance,
                                           factors.frequency)
        pairs = [getattr(sample, self.kind) for sample in samples]

        if use_deflation:
            # Only coefficients outside the interpolation window are deflated
            # away; known coefficients inside a gap window stay in the samples
            # (they are simply re-derived and checked for consistency).
            outside = {power: value for power, value in known.items()
                       if power < first_unknown or power > last_unknown}
            pairs = deflate_samples(pairs, points, outside, first_unknown,
                                    factors, self.admittance_order)

        values, exponent = inverse_dft_scaled(pairs, method=options.dft_method)
        try:
            region = find_valid_region(values, exponent,
                                       options.significant_digits)
        except InterpolationError:
            region = None

        new_values: Dict[int, XFloat] = {}
        log10_by_power: Dict[int, float] = {}
        consistency = 0.0
        if region is not None:
            denormalized = self._denormalize_window(values, exponent, factors,
                                                    offset)
            for relative_index in region.indices:
                power = offset + relative_index
                if power > degree_bound:
                    continue
                estimate = denormalized[relative_index]
                log10_by_power[power] = region.log10_magnitudes[relative_index]
                if power in known:
                    consistency = max(
                        consistency,
                        _log10_deviation(known[power], estimate),
                    )
                    continue
                new_values[power] = estimate

        record = IterationRecord(
            index=iteration_index,
            direction=direction,
            factors=factors,
            ratio_q=ratio_q,
            num_points=num_points,
            deflated=use_deflation,
            offset=offset,
            region_start=None if region is None else offset + region.start,
            region_end=None if region is None else offset + region.end,
            new_indices=sorted(new_values),
            covered_after=len(known) + len(new_values) + len(negligible),
            elapsed_seconds=0.0,
            consistency_log10_deviation=consistency,
        )
        # Dynamic attributes consumed by run(); not part of the public record.
        record.new_values = new_values
        record.log10_by_power = log10_by_power
        return record

    def _denormalize_window(self, values, exponent, factors, offset):
        """Denormalize a window of coefficients starting at power ``offset``."""
        values = np.asarray(values, dtype=complex)
        result: List[XFloat] = []
        for relative_index, value in enumerate(values):
            power = offset + relative_index
            real = float(value.real)
            if real == 0.0:
                result.append(XFloat.zero())
                continue
            log_magnitude = (
                math.log10(abs(real))
                + exponent
                - power * factors.log10_frequency
                - (self.admittance_order - power) * factors.log10_conductance
            )
            result.append(
                XFloat.from_log10(log_magnitude, math.copysign(1.0, real))
            )
        return result


def _log10_deviation(first: XFloat, second: XFloat) -> float:
    """Absolute difference of log10 magnitudes (0 when either value is zero)."""
    if first.is_zero() or second.is_zero():
        return 0.0
    return abs(first.log10() - second.log10())
