"""Extended-range polynomials in the complex frequency ``s``.

Network-function coefficients of large analog circuits span hundreds of
decades, so :class:`Polynomial` stores its coefficients as
:class:`~repro.xfloat.XFloat` values and evaluates in log-magnitude space:
each term's magnitude is accumulated as ``log10 |p_i| + i log10 |s|`` and the
common exponent is factored out before summation.  The result of
:meth:`Polynomial.evaluate` is therefore an ``(mantissa, exponent)`` pair that
never overflows, with :meth:`evaluate_complex` available when a plain complex
number is wanted.
"""

from __future__ import annotations

import cmath
import math
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import InterpolationError
from ..xfloat import XFloat

__all__ = ["Polynomial"]


def _as_xfloat(value) -> XFloat:
    if isinstance(value, XFloat):
        return value
    return XFloat(float(value), 0)


class Polynomial:
    """A polynomial ``p_0 + p_1 s + … + p_n s^n`` with extended-range coefficients.

    Parameters
    ----------
    coefficients:
        Sequence of coefficients in ascending powers of ``s``; entries may be
        floats or :class:`~repro.xfloat.XFloat`.
    """

    def __init__(self, coefficients: Sequence[Union[float, XFloat]]):
        self._coefficients: List[XFloat] = [_as_xfloat(c) for c in coefficients]
        if not self._coefficients:
            self._coefficients = [XFloat.zero()]
        # Compiled nonzero-coefficient arrays for evaluate_many, built on
        # first use.  Safe to cache: every algebraic operation returns a
        # new Polynomial, so the coefficient list never mutates.
        self._compiled = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_floats(cls, values: Iterable[float]):
        """Build from plain floats."""
        return cls([float(v) for v in values])

    @classmethod
    def zero(cls, degree=0):
        """The zero polynomial padded to ``degree``."""
        return cls([XFloat.zero()] * (degree + 1))

    # -- container behaviour ---------------------------------------------------

    @property
    def coefficients(self) -> List[XFloat]:
        """Coefficients in ascending powers (including trailing zeros)."""
        return list(self._coefficients)

    def coefficient(self, power) -> XFloat:
        """Coefficient of ``s**power`` (zero beyond the stored length)."""
        if power < 0:
            raise InterpolationError("coefficient power must be non-negative")
        if power >= len(self._coefficients):
            return XFloat.zero()
        return self._coefficients[power]

    def __len__(self):
        return len(self._coefficients)

    def __getitem__(self, power):
        return self.coefficient(power)

    def __iter__(self):
        return iter(self._coefficients)

    @property
    def degree(self):
        """Degree ignoring trailing zero coefficients (0 for the zero polynomial)."""
        for power in range(len(self._coefficients) - 1, -1, -1):
            if not self._coefficients[power].is_zero():
                return power
        return 0

    def is_zero(self):
        """True when every coefficient is zero."""
        return all(c.is_zero() for c in self._coefficients)

    def trimmed(self):
        """Copy without trailing zero coefficients."""
        return Polynomial(self._coefficients[: self.degree + 1])

    # -- algebra ----------------------------------------------------------------

    def scaled(self, factor):
        """Return ``factor * P(s)``."""
        factor = _as_xfloat(factor)
        return Polynomial([c * factor for c in self._coefficients])

    def variable_scaled(self, scale):
        """Return ``P(scale · s)`` — every coefficient ``p_i`` becomes ``p_i scale^i``."""
        scale = _as_xfloat(scale)
        return Polynomial([c * scale**i for i, c in enumerate(self._coefficients)])

    def derivative(self):
        """Formal derivative ``dP/ds``."""
        if len(self._coefficients) <= 1:
            return Polynomial([XFloat.zero()])
        return Polynomial([
            self._coefficients[i] * float(i)
            for i in range(1, len(self._coefficients))
        ])

    def __add__(self, other):
        if not isinstance(other, Polynomial):
            return NotImplemented
        size = max(len(self), len(other))
        return Polynomial([
            self.coefficient(i) + other.coefficient(i) for i in range(size)
        ])

    def __sub__(self, other):
        if not isinstance(other, Polynomial):
            return NotImplemented
        size = max(len(self), len(other))
        return Polynomial([
            self.coefficient(i) - other.coefficient(i) for i in range(size)
        ])

    def __neg__(self):
        return Polynomial([-c for c in self._coefficients])

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, s) -> Tuple[complex, int]:
        """Evaluate at complex ``s``; returns ``(mantissa, exponent)``.

        The value is ``mantissa * 10**exponent``.  Terms more than 300 decades
        below the largest term are dropped (they cannot affect the sum at
        double precision).
        """
        s = complex(s)
        terms: List[Tuple[float, float]] = []  # (log10 magnitude, phase)
        if s == 0:
            constant = self._coefficients[0]
            if constant.is_zero():
                return 0.0 + 0.0j, 0
            phase = 0.0 if constant.sign() > 0 else math.pi
            log_magnitude = constant.log10()
            exponent = int(math.floor(log_magnitude))
            mantissa = 10.0 ** (log_magnitude - exponent) * cmath.exp(1j * phase)
            return mantissa, exponent
        log_s = math.log10(abs(s))
        arg_s = cmath.phase(s)
        for power, coefficient in enumerate(self._coefficients):
            if coefficient.is_zero():
                continue
            log_magnitude = coefficient.log10() + power * log_s
            phase = (0.0 if coefficient.sign() > 0 else math.pi) + power * arg_s
            terms.append((log_magnitude, phase))
        if not terms:
            return 0.0 + 0.0j, 0
        peak = max(log_magnitude for log_magnitude, __ in terms)
        exponent = int(math.floor(peak))
        accumulator = 0.0 + 0.0j
        for log_magnitude, phase in terms:
            shift = log_magnitude - exponent
            if shift < -300:
                continue
            accumulator += 10.0**shift * cmath.exp(1j * phase)
        return accumulator, exponent

    def evaluate_many(self, s_values) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`evaluate` over an array of complex points.

        The grid runs on the compiled coefficient arrays shared with the
        transfer-model compiler
        (:func:`repro.symbolic.compile.log_polynomial_grid`): the nonzero
        coefficients are lowered once per polynomial instead of being
        re-extracted and re-broadcast on every call, with bit-identical
        arithmetic.  Returns ``(mantissas, exponents)`` arrays with value
        ``mantissa * 10**exponent`` per point.
        """
        s = np.asarray(s_values, dtype=complex)
        shape = s.shape
        s = s.ravel()
        mantissas = np.zeros(s.shape, dtype=complex)
        exponents = np.zeros(s.shape, dtype=np.int64)
        zero_points = s == 0
        if zero_points.any():
            mantissa, exponent = self.evaluate(0.0)
            mantissas[zero_points] = mantissa
            exponents[zero_points] = exponent
        live = ~zero_points
        if live.any():
            if self._compiled is None:
                from ..symbolic.compile import compile_polynomial

                self._compiled = compile_polynomial(self._coefficients)
            if self._compiled.powers.size:
                mantissas[live], exponents[live] = \
                    self._compiled.grid(s[live])
        return mantissas.reshape(shape), exponents.reshape(shape)

    def evaluate_complex(self, s) -> complex:
        """Evaluate as a plain complex number (may overflow / underflow)."""
        mantissa, exponent = self.evaluate(s)
        if mantissa == 0:
            return 0.0 + 0.0j
        if exponent > 300:
            return mantissa * math.inf
        if exponent < -300:
            return 0.0 + 0.0j
        return mantissa * 10.0**exponent

    def log10_magnitude(self, s) -> float:
        """``log10 |P(s)|`` (``-inf`` when the value is zero)."""
        mantissa, exponent = self.evaluate(s)
        if mantissa == 0:
            return -math.inf
        return math.log10(abs(mantissa)) + exponent

    # -- comparison helpers ----------------------------------------------------------

    def max_relative_coefficient_error(self, other, ignore_below=None) -> float:
        """Largest relative difference between coefficients of two polynomials.

        Coefficients whose magnitude (in the larger polynomial) is below
        ``ignore_below`` (an :class:`XFloat` or float) are skipped — useful
        when comparing against a reference that treats tiny coefficients as
        zero.
        """
        if not isinstance(other, Polynomial):
            raise TypeError("comparison requires another Polynomial")
        worst = 0.0
        threshold = None if ignore_below is None else _as_xfloat(ignore_below)
        for power in range(max(len(self), len(other))):
            mine = self.coefficient(power)
            theirs = other.coefficient(power)
            larger = abs(mine) if abs(mine) > abs(theirs) else abs(theirs)
            if larger.is_zero():
                continue
            if threshold is not None and larger < threshold:
                continue
            difference = abs(mine - theirs)
            relative = float(difference / larger)
            worst = max(worst, relative)
        return worst

    def __repr__(self):
        inner = ", ".join(str(c) for c in self._coefficients[:6])
        if len(self._coefficients) > 6:
            inner += ", …"
        return f"Polynomial(degree={self.degree}, [{inner}])"
