"""Problem-size reduction between interpolations (Section 3.3, Eq. 17).

Once the coefficients of the lowest powers ``0..k-1`` and the highest powers
``l+1..n`` are known, the remaining ones can be obtained from a *deflated*
polynomial

``P'(s) = (P(s) - Σ_{i<k} p_i s^i - Σ_{i>l} p_i s^i) / s^k``

of degree ``l - k``, which needs only ``l - k + 1`` interpolation points — the
mechanism behind the decreasing per-iteration CPU times the paper reports
(3.9 s → 2.3 s → 0.9 s).

Because the interpolation points sit on the unit circle, the magnitude of each
known contribution equals the magnitude of its *normalized* coefficient under
the current scale factors, so the subtraction can be carried out safely with a
common-decimal-exponent rescaling.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import InterpolationError
from ..xfloat import XFloat
from .scaling import ScaleFactors, normalize_coefficient

__all__ = ["deflate_samples", "deflation_point_count"]


def deflation_point_count(first_unknown, last_unknown):
    """Number of interpolation points needed after deflation (Eq. 17)."""
    if last_unknown < first_unknown:
        raise InterpolationError("empty unknown coefficient range")
    return last_unknown - first_unknown + 1


def deflate_samples(samples, points, known_coefficients, first_unknown,
                    factors, admittance_order) -> List[Tuple[complex, int]]:
    """Subtract known-coefficient contributions and shift down by ``s^k``.

    Parameters
    ----------
    samples:
        Sequence of ``(mantissa, exponent)`` pairs — raw samples ``P(s_j)`` of
        the *scaled* polynomial at the unit-circle ``points``.
    points:
        The interpolation points (must have unit magnitude).
    known_coefficients:
        Mapping power → true (denormalized) coefficient :class:`XFloat` for
        every already-known power.
    first_unknown:
        ``k`` in Eq. 17 — every power below it must be in
        ``known_coefficients``.
    factors:
        Scale factors of the *current* interpolation (used to re-normalize the
        known coefficients before subtraction).
    admittance_order:
        ``M`` of Eq. (11) for this polynomial.

    Returns
    -------
    list of (complex, int)
        Deflated samples ``P'(s_j)`` in the same extended-range representation.
    """
    samples = list(samples)
    points = list(points)
    if len(samples) != len(points):
        raise InterpolationError("samples and points must have the same length")
    for power in range(first_unknown):
        if power not in known_coefficients:
            raise InterpolationError(
                f"deflation requires coefficient {power} to be known"
            )

    # Normalized magnitudes (log10) and signs of the known coefficients under
    # the current scale factors.  |s_j| == 1, so these are also the term
    # magnitudes at every point.
    normalized: List[Tuple[int, float, float]] = []  # (power, log10 |p'|, sign)
    for power, coefficient in known_coefficients.items():
        if coefficient.is_zero():
            continue
        scaled = normalize_coefficient(coefficient, power, admittance_order,
                                       factors)
        normalized.append((power, scaled.log10(), scaled.sign()))

    deflated: List[Tuple[complex, int]] = []
    for sample, point in zip(samples, points):
        mantissa, exponent = sample
        magnitude = abs(point)
        if not math.isclose(magnitude, 1.0, rel_tol=1e-9):
            raise InterpolationError("deflation expects unit-circle points")
        theta = cmath.phase(point)
        # Common exponent across the raw sample and every known term.
        candidates = [exponent] if mantissa != 0 else []
        candidates.extend(int(math.floor(log_mag)) for __, log_mag, __s in normalized)
        if not candidates:
            deflated.append((0.0 + 0.0j, 0))
            continue
        common = max(candidates)
        accumulator = 0.0 + 0.0j
        if mantissa != 0:
            shift = exponent - common
            if shift >= -300:
                accumulator += mantissa * 10.0**shift
        for power, log_mag, sign in normalized:
            shift = log_mag - common
            if shift < -300:
                continue
            term = sign * 10.0**shift * cmath.exp(1j * power * theta)
            accumulator -= term
        # Divide by s^k: unit magnitude, phase rotation only.
        if first_unknown:
            accumulator *= cmath.exp(-1j * first_unknown * theta)
        if accumulator == 0:
            deflated.append((0.0 + 0.0j, 0))
            continue
        shift = int(math.floor(math.log10(abs(accumulator))))
        deflated.append((accumulator / 10.0**shift, common + shift))
    return deflated
