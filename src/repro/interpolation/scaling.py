"""Frequency / conductance scale factors and the Eq. (11) bookkeeping.

Scaling every capacitance by ``f`` and every conductance (including
transconductances) by ``g`` turns the true coefficients ``p_i`` into the
normalized coefficients actually recovered by the interpolation:

``p'_i = p_i · f^i · g^(M - i)``                       (Eq. 11)

where ``M`` is the number of admittance factors per determinant term (the
matrix dimension).  The module provides:

* :class:`ScaleFactors` — the ``(f, g)`` pair,
* :func:`initial_scale_factors` — the paper's first-iteration heuristic
  (inverse of the mean capacitance / mean conductance),
* :func:`denormalize_coefficients` / :func:`normalize_coefficient` — exact
  conversion in log space using :class:`~repro.xfloat.XFloat`,
* :func:`forward_update`, :func:`backward_update`, :func:`gap_update` — the
  scale-factor updates of Eqs. (13)–(16), expressed through the per-power
  reweighting ratio ``q`` and split evenly between ``f`` and ``g`` (the
  "simultaneous scaling" the paper uses to keep either factor below ~1e18).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InterpolationError
from ..xfloat import XFloat

__all__ = [
    "ScaleFactors",
    "initial_scale_factors",
    "normalize_coefficient",
    "denormalize_coefficients",
    "forward_update",
    "backward_update",
    "gap_update",
]

#: Decimal digits carried by IEEE double precision (the paper's "16-decimal-
#: digit accuracy" computer); the interpolation noise floor is 10**-13 · max.
MACHINE_DIGITS = 13


@dataclasses.dataclass(frozen=True)
class ScaleFactors:
    """A frequency scale factor ``f`` and a conductance scale factor ``g``.

    The sampler multiplies every capacitance by ``f`` and every conductance by
    ``g`` before evaluating the network function, which is how the paper's
    frequency / conductance scaling is realized without touching the
    interpolation points (they stay on the unit circle).
    """

    frequency: float = 1.0
    conductance: float = 1.0

    def __post_init__(self):
        if self.frequency <= 0.0 or self.conductance <= 0.0:
            raise InterpolationError("scale factors must be positive")

    @property
    def log10_frequency(self):
        """``log10 f``."""
        return math.log10(self.frequency)

    @property
    def log10_conductance(self):
        """``log10 g``."""
        return math.log10(self.conductance)

    @property
    def per_power_ratio(self):
        """``f / g`` — the weight applied per additional power of ``s``."""
        return self.frequency / self.conductance

    def max_factor(self):
        """The larger of ``f`` and ``g`` (used to check the <1e18 guideline)."""
        return max(self.frequency, self.conductance)

    def with_ratio_applied(self, q):
        """Return new factors with the per-power ratio multiplied by ``q``.

        The adjustment is split evenly in log space: ``f → f·√q``,
        ``g → g/√q`` — the paper's simultaneous scaling of frequency and
        conductance.
        """
        if q <= 0.0:
            raise InterpolationError("scale ratio q must be positive")
        root = math.sqrt(q)
        return ScaleFactors(self.frequency * root, self.conductance / root)

    def __str__(self):
        return f"f={self.frequency:.4g}, g={self.conductance:.4g}"


def initial_scale_factors(circuit) -> ScaleFactors:
    """First-iteration heuristic: ``f = 1/mean(C)``, ``g = 1/mean(G)``.

    The objective (Sec. 3.2 of the paper) is to generate the widest region of
    valid coefficients on the first interpolation by bringing both capacitive
    and conductive admittances near unity on the unit circle.
    """
    mean_capacitance = circuit.mean_capacitance()
    mean_conductance = circuit.mean_conductance()
    frequency = 1.0 / mean_capacitance if mean_capacitance > 0.0 else 1.0
    conductance = 1.0 / mean_conductance if mean_conductance > 0.0 else 1.0
    return ScaleFactors(frequency, conductance)


# --------------------------------------------------------------------------- #
# normalization / denormalization
# --------------------------------------------------------------------------- #


def normalize_coefficient(coefficient, power, admittance_order, factors):
    """Return ``p'_i = p_i f^i g^(M-i)`` as an :class:`XFloat`.

    ``coefficient`` may be a float or :class:`XFloat`.
    """
    if not isinstance(coefficient, XFloat):
        coefficient = XFloat(float(coefficient), 0)
    if coefficient.is_zero():
        return XFloat.zero()
    log_magnitude = (
        coefficient.log10()
        + power * factors.log10_frequency
        + (admittance_order - power) * factors.log10_conductance
    )
    return XFloat.from_log10(log_magnitude, coefficient.sign())


def denormalize_coefficients(values, common_exponent, factors,
                             admittance_order) -> List[XFloat]:
    """Convert normalized interpolation output to true coefficients.

    Parameters
    ----------
    values:
        Complex coefficient mantissas straight from the inverse DFT.
    common_exponent:
        Decimal exponent shared by all of ``values``.
    factors:
        The :class:`ScaleFactors` used for the interpolation.
    admittance_order:
        ``M`` of Eq. (11) — matrix dimension for the denominator, one less for
        a current-driven numerator.

    Returns
    -------
    list of XFloat
        Real denormalized coefficients ``p_i = p'_i f^-i g^(i-M)``; the
        imaginary parts of ``values`` are round-off residue and are discarded.
    """
    values = np.asarray(values, dtype=complex)
    result: List[XFloat] = []
    for power, value in enumerate(values):
        real = float(value.real)
        if real == 0.0:
            result.append(XFloat.zero())
            continue
        log_magnitude = (
            math.log10(abs(real))
            + common_exponent
            - power * factors.log10_frequency
            - (admittance_order - power) * factors.log10_conductance
        )
        result.append(XFloat.from_log10(log_magnitude, math.copysign(1.0, real)))
    return result


# --------------------------------------------------------------------------- #
# scale-factor updates (Eqs. 13-16)
# --------------------------------------------------------------------------- #


def _solve_ratio(log_target_gap, index_gap):
    """Solve ``q`` from ``q**index_gap = 10**log_target_gap``."""
    if index_gap == 0:
        # Degenerate region (single valid coefficient); fall back to the value
        # the paper's formula yields for adjacent indices.
        return 10.0**log_target_gap
    return 10.0 ** (log_target_gap / index_gap)


def forward_update(factors, last_index, last_log10, max_index, max_log10,
                   tuning_r=0.0) -> Tuple[ScaleFactors, float]:
    """Scale factors for the next interpolation towards *higher* powers of ``s``.

    Implements Eqs. (13)–(14): choose ``q`` such that the last valid
    coefficient ``p_e`` of the previous region becomes one of the first (and
    largest) coefficients of the next region, i.e.

    ``|p'_e| q^e = |p'_m| q^m · 10^(13 + r)``.

    Parameters
    ----------
    factors:
        Previous :class:`ScaleFactors`.
    last_index, last_log10:
        Index ``e`` and ``log10 |p'_e|`` of the last coefficient in the
        previous valid region.
    max_index, max_log10:
        Index ``m`` and ``log10 |p'_m|`` of the largest coefficient in the
        previous valid region.
    tuning_r:
        The paper's tuning factor ``r`` (decades of extra separation).

    Returns
    -------
    (ScaleFactors, float)
        The updated factors and the ratio ``q`` that was applied.
    """
    log_gap = MACHINE_DIGITS + tuning_r + max_log10 - last_log10
    q = _solve_ratio(log_gap, last_index - max_index)
    if q <= 1.0:
        # The update must move towards higher powers; enforce a minimal step.
        q = 10.0 ** max(1.0, MACHINE_DIGITS + tuning_r)
    return factors.with_ratio_applied(q), q


def backward_update(factors, first_index, first_log10, max_index, max_log10,
                    tuning_r=0.0) -> Tuple[ScaleFactors, float]:
    """Scale factors for the next interpolation towards *lower* powers of ``s``.

    Implements Eq. (15): ``|p'_b| q^b = |p'_m| q^m · 10^(13 + r)`` with
    ``b < m``, which yields ``q < 1``.
    """
    log_gap = MACHINE_DIGITS + tuning_r + max_log10 - first_log10
    q = _solve_ratio(log_gap, first_index - max_index)
    if q >= 1.0:
        q = 10.0 ** (-max(1.0, MACHINE_DIGITS + tuning_r))
    return factors.with_ratio_applied(q), q


def gap_update(factors_low, factors_high) -> ScaleFactors:
    """Scale factors for filling a gap between two valid regions (Eq. 16).

    The new factors are the geometric means of the two neighbouring regions'
    factors, i.e. the log-average of both the frequency and the conductance
    scale factor.
    """
    frequency = 10.0 ** (
        0.5 * (math.log10(factors_low.frequency) + math.log10(factors_high.frequency))
    )
    conductance = 10.0 ** (
        0.5 * (math.log10(factors_low.conductance)
               + math.log10(factors_high.conductance))
    )
    return ScaleFactors(frequency, conductance)
