"""Interpolation point generation.

The polynomial interpolation method evaluates the network function at ``K``
points; the paper (following Vlach & Singhal) uses equally spaced points on the
unit circle of the complex plane, which turns coefficient recovery into an
inverse DFT and gives the best numerical conditioning.  Frequency scaling is
*not* applied here — the sampler scales the capacitance values instead, which
is numerically equivalent to moving the circle radius but keeps the DFT on the
unit circle.
"""

from __future__ import annotations

import cmath
import math
from typing import List

from ..errors import InterpolationError

__all__ = ["unit_circle_points", "circle_points", "minimum_point_count"]


def minimum_point_count(degree):
    """Number of interpolation points needed for a polynomial of ``degree``."""
    if degree < 0:
        raise InterpolationError("polynomial degree must be non-negative")
    return degree + 1


def unit_circle_points(count) -> List[complex]:
    """``count`` equally spaced points ``exp(2πjk/K)`` for ``k = 0..K-1``.

    Raises
    ------
    InterpolationError
        If ``count`` is not a positive integer.
    """
    return circle_points(count, radius=1.0)


def circle_points(count, radius=1.0) -> List[complex]:
    """``count`` equally spaced points on a circle of ``radius``.

    The first point is always the positive real point ``radius + 0j``.
    """
    count = int(count)
    if count <= 0:
        raise InterpolationError("point count must be positive")
    if radius <= 0.0:
        raise InterpolationError("circle radius must be positive")
    step = 2.0 * math.pi / count
    return [radius * cmath.exp(1j * step * k) for k in range(count)]
