"""Polynomial interpolation with adaptive scaling — the paper's contribution.

The package implements, layer by layer:

* :mod:`repro.interpolation.points` — interpolation points on the unit circle,
* :mod:`repro.interpolation.dft` — the inverse DFT that recovers polynomial
  coefficients from samples (with decimal-exponent aware batching),
* :mod:`repro.interpolation.polynomial` / :mod:`repro.interpolation.rational`
  — extended-range polynomial and rational-function containers, with
  vectorized grid evaluation (``evaluate_many`` / ``frequency_response``)
  for whole frequency sweeps,
* :mod:`repro.interpolation.basic` — the conventional single-interpolation
  method of Section 2 (used to reproduce Table 1),
* :mod:`repro.interpolation.scaling` — frequency / conductance scale factors
  and the Eq. (11) normalization bookkeeping,
* :mod:`repro.interpolation.regions` — valid-coefficient region detection via
  the round-off error level (Eq. 12),
* :mod:`repro.interpolation.adaptive` — the adaptive scaling algorithm of
  Section 3.2 (Eqs. 13–16),
* :mod:`repro.interpolation.reduction` — the problem-size reduction of
  Section 3.3 (Eq. 17),
* :mod:`repro.interpolation.reference` — the high-level
  :func:`~repro.interpolation.reference.generate_reference` API producing the
  numerical reference consumed by SDG / SBG error control.
"""

from .points import unit_circle_points
from .dft import inverse_dft, inverse_dft_scaled
from .polynomial import Polynomial
from .rational import RationalFunction
from .basic import InterpolationResult, interpolate_network_function
from .scaling import ScaleFactors, initial_scale_factors, denormalize_coefficients
from .regions import ValidRegion, find_valid_region, error_level
from .adaptive import AdaptiveScalingInterpolator, AdaptiveResult, AdaptiveOptions
from .reference import NumericalReference, generate_reference

__all__ = [
    "unit_circle_points",
    "inverse_dft",
    "inverse_dft_scaled",
    "Polynomial",
    "RationalFunction",
    "InterpolationResult",
    "interpolate_network_function",
    "ScaleFactors",
    "initial_scale_factors",
    "denormalize_coefficients",
    "ValidRegion",
    "find_valid_region",
    "error_level",
    "AdaptiveScalingInterpolator",
    "AdaptiveResult",
    "AdaptiveOptions",
    "NumericalReference",
    "generate_reference",
]
