"""Inverse discrete Fourier transform for coefficient recovery.

With samples ``P(s_k)`` at the ``K`` unit-circle points the polynomial
coefficients follow from the inverse DFT (Eq. 5 of the paper):

``p_i = (1/K) Σ_k P(s_k) · exp(-2πj i k / K)``.

Two entry points are provided:

* :func:`inverse_dft` — plain complex samples (numpy array in, numpy array
  out), with a direct ``O(K²)`` reference implementation and a numpy-FFT fast
  path that are tested against each other;
* :func:`inverse_dft_scaled` — samples given as ``(mantissa, exponent)`` pairs
  (the sampler's extended-range representation).  The whole batch is rescaled
  by a common power of ten before the transform, and that common exponent is
  returned alongside the coefficients, so nothing overflows regardless of the
  determinant magnitudes.
"""

from __future__ import annotations

import cmath
import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import InterpolationError

__all__ = ["inverse_dft", "inverse_dft_direct", "inverse_dft_scaled"]

#: ``10**e`` for ``e`` in ``[-300, 0]``, built with Python's scalar pow so the
#: vectorized rescaling reproduces the historical per-sample loop bit for bit
#: (numpy's vectorized ``10.0**x`` does not always match scalar pow to the
#: last ulp).  Shifts are relative to the batch maximum, hence never positive,
#: and anything below -300 is flushed to zero before lookup.
_POW10_SHIFT_FLOOR = -300
_POW10 = np.array([10.0**e for e in range(_POW10_SHIFT_FLOOR, 1)])


def inverse_dft_direct(samples) -> np.ndarray:
    """Direct ``O(K²)`` inverse DFT (reference implementation)."""
    samples = np.asarray(samples, dtype=complex)
    count = samples.shape[0]
    if count == 0:
        raise InterpolationError("inverse DFT of an empty sample vector")
    coefficients = np.zeros(count, dtype=complex)
    for i in range(count):
        accumulator = 0.0 + 0.0j
        for k in range(count):
            accumulator += samples[k] * cmath.exp(-2j * math.pi * i * k / count)
        coefficients[i] = accumulator / count
    return coefficients


def inverse_dft(samples, method="fft") -> np.ndarray:
    """Inverse DFT of equally spaced unit-circle samples.

    Parameters
    ----------
    samples:
        ``P(s_k)`` for ``s_k = exp(2πjk/K)``, ``k = 0..K-1``.
    method:
        ``"fft"`` (numpy, default) or ``"direct"`` (the O(K²) reference).

    Returns
    -------
    numpy.ndarray
        Complex coefficient estimates ``p_0 .. p_{K-1}``.
    """
    samples = np.asarray(samples, dtype=complex)
    if samples.ndim != 1 or samples.shape[0] == 0:
        raise InterpolationError("samples must be a non-empty 1-D sequence")
    if method == "direct":
        return inverse_dft_direct(samples)
    if method != "fft":
        raise InterpolationError(f"unknown inverse DFT method {method!r}")
    # numpy.fft.fft computes sum x_k exp(-2πjik/K), i.e. exactly K * p_i.
    return np.fft.fft(samples) / samples.shape[0]


def inverse_dft_scaled(samples, method="fft") -> Tuple[np.ndarray, int]:
    """Inverse DFT of extended-range samples.

    Parameters
    ----------
    samples:
        Sequence of ``(mantissa, exponent)`` pairs representing
        ``mantissa * 10**exponent`` with complex mantissas.
    method:
        Passed through to :func:`inverse_dft`.

    Returns
    -------
    (numpy.ndarray, int)
        ``(coefficients, common_exponent)`` such that the true coefficient
        ``p_i`` equals ``coefficients[i] * 10**common_exponent``.

    Notes
    -----
    All samples of one interpolation lie on a circle and have comparable
    magnitudes; samples more than ~300 decades below the largest one are
    flushed to zero (they cannot influence double-precision sums anyway).
    """
    pairs = list(samples)
    if not pairs:
        raise InterpolationError("inverse DFT of an empty sample vector")
    mantissas = np.array([mantissa for mantissa, __ in pairs], dtype=complex)
    exponents = np.array([exponent for __, exponent in pairs], dtype=np.int64)
    nonzero = mantissas != 0
    if not nonzero.any():
        return np.zeros(len(pairs), dtype=complex), 0
    common = int(exponents[nonzero].max())
    shifts = exponents - common
    keep = nonzero & (shifts >= _POW10_SHIFT_FLOOR)
    rescaled = np.zeros(len(pairs), dtype=complex)
    rescaled[keep] = mantissas[keep] * _POW10[shifts[keep]
                                              - _POW10_SHIFT_FLOOR]
    return inverse_dft(rescaled, method=method), common
