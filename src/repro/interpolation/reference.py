"""High-level numerical reference generation.

:func:`generate_reference` is the library's main entry point: given a circuit
and a transfer-function specification it runs the adaptive scaling
interpolation for both numerator and denominator and returns a
:class:`NumericalReference` — exactly the object SBG / SDG error control needs
(total coefficient magnitudes ``h_k(x_0)`` of Eq. 3, plus the full rational
function for frequency-domain comparisons).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..errors import InterpolationError, ReferenceError_
from ..netlist.transform import to_admittance_form
from ..nodal.reduce import TransferSpec
from ..nodal.sampler import NetworkFunctionSampler
from ..xfloat import XFloat
from .adaptive import AdaptiveOptions, AdaptiveResult, AdaptiveScalingInterpolator
from .polynomial import Polynomial
from .rational import RationalFunction

__all__ = ["NumericalReference", "generate_reference"]


@dataclasses.dataclass
class NumericalReference:
    """The numerical reference of a network function.

    Attributes
    ----------
    numerator, denominator:
        :class:`~repro.interpolation.adaptive.AdaptiveResult` for each
        polynomial, carrying the extended-range coefficients, per-iteration
        records and convergence information.
    spec:
        The transfer specification the reference was generated for.
    """

    numerator: AdaptiveResult
    denominator: AdaptiveResult
    spec: TransferSpec

    # ------------------------------------------------------------------ #

    def _result(self, kind) -> AdaptiveResult:
        if kind in ("numerator", "n", "num"):
            return self.numerator
        if kind in ("denominator", "d", "den"):
            return self.denominator
        raise ReferenceError_(f"unknown polynomial kind {kind!r}")

    def coefficient(self, kind, power) -> XFloat:
        """Reference coefficient ``h_k(x_0)`` — the Eq. (3) comparison value."""
        return self._result(kind).coefficient(power)

    def coefficient_magnitude(self, kind, power) -> float:
        """``log10 |h_k(x_0)|`` (``-inf`` for negligible coefficients)."""
        value = self.coefficient(kind, power)
        if value.is_zero():
            return float("-inf")
        return value.log10()

    def coefficients(self, kind) -> List[XFloat]:
        """All reference coefficients of one polynomial."""
        return list(self._result(kind).coefficients)

    def transfer_function(self) -> RationalFunction:
        """The reference network function ``H(s) = N(s) / D(s)``."""
        return RationalFunction(self.numerator.polynomial(),
                                self.denominator.polynomial())

    def bode(self, frequencies):
        """``(magnitude_db, phase_deg)`` of the reference over ``frequencies``."""
        return self.transfer_function().bode(frequencies)

    def frequency_response(self, frequencies) -> np.ndarray:
        """Complex ``H(j2πf)`` of the reference (vectorized over the grid)."""
        return self.transfer_function().frequency_response(frequencies)

    @property
    def converged(self):
        """True when both polynomials were fully resolved."""
        return self.numerator.converged and self.denominator.converged

    def iteration_count(self):
        """Total number of interpolations across numerator and denominator."""
        return self.numerator.iteration_count() + self.denominator.iteration_count()

    def summary(self) -> str:
        """Multi-line human-readable summary of the reference generation."""
        lines = [
            f"numerical reference for {self.spec.describe()}",
            "  " + self.numerator.summary(),
            "  " + self.denominator.summary(),
        ]
        return "\n".join(lines)


def generate_reference(circuit, spec, options=None, method="auto",
                       admittance_transform=True, merge_parallel=False,
                       session=None) -> NumericalReference:
    """Generate the numerical reference of a circuit's network function.

    Parameters
    ----------
    circuit:
        Any linear(ized) circuit; inductors are transformed to gyrator-C form.
    spec:
        A :class:`~repro.nodal.reduce.TransferSpec` (drive sources + output).
    options:
        :class:`~repro.interpolation.adaptive.AdaptiveOptions` shared by the
        numerator and denominator runs.
    method:
        LU backend selection (``"auto"``, ``"dense"``, ``"sparse"``).
    admittance_transform:
        Set to False when the circuit is already in admittance form.
    merge_parallel:
        Merge parallel capacitors / conductances first (tightens the degree
        bound, hence the point count).
    session:
        Optional :class:`~repro.engine.session.AnalysisSession` — the whole
        generation run is then memoized on circuit content, spec, options
        and backend, so chained workloads (SBG error control followed by an
        interpolation stage on the same circuit) generate the reference
        exactly once.

    Returns
    -------
    NumericalReference
    """
    if session is not None:
        return session.reference(circuit, spec, options=options,
                                 method=method,
                                 admittance_transform=admittance_transform,
                                 merge_parallel=merge_parallel)
    if admittance_transform:
        circuit = to_admittance_form(circuit, merge_parallel=merge_parallel)
    sampler = NetworkFunctionSampler(circuit, spec, method=method)
    options = options or AdaptiveOptions()

    denominator = AdaptiveScalingInterpolator(
        sampler, kind="denominator", options=options
    ).run()
    numerator = AdaptiveScalingInterpolator(
        sampler, kind="numerator", options=options
    ).run()

    if isinstance(spec, TransferSpec):
        resolved_spec = spec
    else:
        resolved_spec = sampler.formulation.spec
    return NumericalReference(numerator=numerator, denominator=denominator,
                              spec=resolved_spec)
