"""Valid-coefficient region detection (Eq. 12 of the paper).

In a single interpolation, only coefficients whose normalized magnitude stays
above the round-off error level are trustworthy.  With a 16-decimal-digit
machine the error level is ``10^-13 · max_i |p'_i|``; to guarantee ``σ``
significant digits, every coefficient below ``10^(σ-13) · max_i |p'_i|`` must
be discarded (Eq. 12 uses σ = 6).  The valid *region* is the contiguous run of
indices around the largest coefficient that stays above that threshold — the
adaptive algorithm stitches such regions together across interpolations.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InterpolationError
from .scaling import MACHINE_DIGITS

__all__ = ["ValidRegion", "find_valid_region", "error_level", "coefficient_log10"]


def coefficient_log10(values, common_exponent=0) -> List[float]:
    """``log10`` magnitude of each (complex) coefficient; ``-inf`` for zeros."""
    result = []
    for value in np.asarray(values, dtype=complex):
        magnitude = abs(value)
        if magnitude == 0.0:
            result.append(-math.inf)
        else:
            result.append(math.log10(magnitude) + common_exponent)
    return result


def error_level(values, common_exponent=0, machine_digits=MACHINE_DIGITS) -> float:
    """``log10`` of the interpolation round-off level: ``max_i log10|p'_i| - 13``."""
    logs = coefficient_log10(values, common_exponent)
    peak = max(logs)
    if peak == -math.inf:
        return -math.inf
    return peak - machine_digits


@dataclasses.dataclass
class ValidRegion:
    """Contiguous run of trustworthy coefficients in one interpolation.

    Attributes
    ----------
    start, end:
        First and last valid coefficient index (inclusive).
    max_index:
        Index of the coefficient with the largest normalized magnitude.
    log10_magnitudes:
        ``log10 |p'_i|`` for every index of the interpolation (``-inf`` for
        exact zeros).
    threshold_log10:
        ``log10`` of the validity threshold (Eq. 12).
    error_level_log10:
        ``log10`` of the raw round-off level (``max - 13``).
    mask:
        Boolean validity of every index (above threshold), not restricted to
        the contiguous region.
    """

    start: int
    end: int
    max_index: int
    log10_magnitudes: List[float]
    threshold_log10: float
    error_level_log10: float
    mask: List[bool]

    @property
    def indices(self) -> List[int]:
        """Indices of the contiguous valid region."""
        return list(range(self.start, self.end + 1))

    @property
    def width(self) -> int:
        """Number of coefficients in the contiguous region."""
        return self.end - self.start + 1

    def contains(self, index) -> bool:
        """True when ``index`` lies inside the contiguous region."""
        return self.start <= index <= self.end

    def log10_at(self, index) -> float:
        """``log10 |p'_index|``."""
        return self.log10_magnitudes[index]

    def __repr__(self):
        return (
            f"ValidRegion([{self.start}..{self.end}], max at {self.max_index}, "
            f"threshold 1e{self.threshold_log10:.1f})"
        )


def find_valid_region(values, common_exponent=0, significant_digits=6,
                      machine_digits=MACHINE_DIGITS) -> ValidRegion:
    """Locate the valid coefficient region of one interpolation.

    Parameters
    ----------
    values:
        Complex normalized coefficients (inverse-DFT output mantissas).
    common_exponent:
        Shared decimal exponent of ``values``.
    significant_digits:
        Desired significant digits σ; the threshold is
        ``10^(σ - machine_digits) · max|p'_i|`` (Eq. 12).
    machine_digits:
        Decimal digits of the arithmetic (13 for IEEE doubles as in the paper).

    Raises
    ------
    InterpolationError
        If every coefficient is exactly zero.
    """
    if significant_digits < 1 or significant_digits >= machine_digits:
        raise InterpolationError(
            "significant_digits must be in [1, machine_digits)"
        )
    logs = coefficient_log10(values, common_exponent)
    peak = max(logs)
    if peak == -math.inf:
        raise InterpolationError("all interpolated coefficients are zero")
    max_index = logs.index(peak)
    threshold = peak - machine_digits + significant_digits
    noise = peak - machine_digits
    mask = [value >= threshold for value in logs]

    start = max_index
    while start > 0 and mask[start - 1]:
        start -= 1
    end = max_index
    while end < len(logs) - 1 and mask[end + 1]:
        end += 1

    return ValidRegion(
        start=start,
        end=end,
        max_index=max_index,
        log10_magnitudes=logs,
        threshold_log10=threshold,
        error_level_log10=noise,
        mask=mask,
    )
