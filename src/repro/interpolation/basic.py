"""The conventional polynomial-interpolation method (Section 2 of the paper).

A single interpolation: sample the network function at ``K`` unit-circle
points (optionally with frequency / conductance scaling), recover coefficients
with the inverse DFT, and report which of them survive the round-off error
level.  This is the method whose failure on integrated circuits (Table 1a)
motivates the adaptive algorithm, and — with a well-chosen scale factor — the
building block the adaptive algorithm calls repeatedly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import InterpolationError
from ..netlist.transform import to_admittance_form
from ..nodal.reduce import TransferSpec
from ..nodal.sampler import NetworkFunctionSampler
from ..xfloat import XFloat
from .dft import inverse_dft_scaled
from .points import unit_circle_points
from .regions import ValidRegion, find_valid_region
from .scaling import ScaleFactors, denormalize_coefficients

__all__ = [
    "InterpolationResult",
    "NetworkInterpolation",
    "interpolate_polynomial",
    "interpolate_network_function",
]


@dataclasses.dataclass
class InterpolationResult:
    """Outcome of one polynomial interpolation for one polynomial (N or D).

    Attributes
    ----------
    kind:
        ``"numerator"`` or ``"denominator"``.
    factors:
        The scale factors used.
    num_points:
        Number of interpolation points ``K``.
    normalized:
        Complex normalized coefficient mantissas (inverse-DFT output).
    common_exponent:
        Shared decimal exponent of ``normalized``.
    admittance_order:
        ``M`` used for denormalization (Eq. 11).
    region:
        The valid coefficient region (Eq. 12), or None when every coefficient
        is zero.
    significant_digits:
        σ used for the validity threshold.
    """

    kind: str
    factors: ScaleFactors
    num_points: int
    normalized: np.ndarray
    common_exponent: int
    admittance_order: int
    region: Optional[ValidRegion]
    significant_digits: int

    # ------------------------------------------------------------------ #

    def normalized_complex(self) -> np.ndarray:
        """Normalized coefficients as plain complex numbers.

        May overflow for extreme scale factors; intended for reporting small
        cases such as Table 1 where the values are representable.
        """
        return self.normalized * 10.0**self.common_exponent

    def imaginary_residue(self) -> np.ndarray:
        """Imaginary parts of the normalized coefficients (round-off residue)."""
        return np.imag(self.normalized_complex())

    def coefficients(self) -> List[XFloat]:
        """All denormalized coefficients (including untrustworthy ones)."""
        return denormalize_coefficients(
            self.normalized, self.common_exponent, self.factors,
            self.admittance_order,
        )

    def valid_coefficients(self) -> Dict[int, XFloat]:
        """Denormalized coefficients restricted to the contiguous valid region."""
        if self.region is None:
            return {}
        everything = self.coefficients()
        return {index: everything[index] for index in self.region.indices}

    def valid_indices(self) -> List[int]:
        """Indices of the contiguous valid region (empty when none)."""
        if self.region is None:
            return []
        return self.region.indices


@dataclasses.dataclass
class NetworkInterpolation:
    """Numerator + denominator results of one interpolation run."""

    numerator: InterpolationResult
    denominator: InterpolationResult

    def rational_function(self):
        """The interpolated ``H(s) = N(s) / D(s)`` (full coefficient sets)."""
        from .polynomial import Polynomial
        from .rational import RationalFunction

        return RationalFunction(
            Polynomial(self.numerator.coefficients()),
            Polynomial(self.denominator.coefficients()),
        )

    def transfer_at(self, s) -> complex:
        """Evaluate the interpolated transfer function at ``s`` (both full sets)."""
        return self.rational_function().evaluate(s)

    def frequency_response(self, frequencies) -> np.ndarray:
        """``H(j 2π f)`` of the interpolated function over a grid (batched)."""
        return self.rational_function().frequency_response(frequencies)


def interpolate_polynomial(sampler, kind="denominator",
                           factors=ScaleFactors(), num_points=None,
                           significant_digits=6,
                           dft_method="fft") -> InterpolationResult:
    """One interpolation of the numerator or denominator polynomial.

    Parameters
    ----------
    sampler:
        A :class:`~repro.nodal.sampler.NetworkFunctionSampler`.
    kind:
        ``"numerator"`` or ``"denominator"``.
    factors:
        Frequency / conductance :class:`ScaleFactors` (identity by default,
        which reproduces the unscaled behaviour of Table 1a).
    num_points:
        Number of interpolation points; defaults to the degree bound + 1.
    significant_digits:
        σ used by the validity threshold (Eq. 12).
    """
    if kind not in ("numerator", "denominator"):
        raise InterpolationError(f"unknown polynomial kind {kind!r}")
    if num_points is None:
        num_points = sampler.max_polynomial_degree() + 1
    points = unit_circle_points(num_points)
    samples = sampler.sample_many(points, factors.conductance, factors.frequency)
    pairs = [getattr(sample, kind) for sample in samples]
    values, exponent = inverse_dft_scaled(pairs, method=dft_method)
    admittance_order = (sampler.formulation.denominator_admittance_order
                        if kind == "denominator"
                        else sampler.formulation.numerator_admittance_order)
    try:
        region = find_valid_region(values, exponent, significant_digits)
    except InterpolationError:
        region = None
    return InterpolationResult(
        kind=kind,
        factors=factors,
        num_points=num_points,
        normalized=values,
        common_exponent=exponent,
        admittance_order=admittance_order,
        region=region,
        significant_digits=significant_digits,
    )


def interpolate_network_function(circuit, spec, factors=ScaleFactors(),
                                 num_points=None, significant_digits=6,
                                 dft_method="fft", method="auto",
                                 admittance_transform=True) -> NetworkInterpolation:
    """Interpolate numerator and denominator of a circuit's network function.

    Convenience wrapper: transforms the circuit to admittance form, builds the
    sampler and interpolates both polynomials with the same scale factors
    (sharing the samples).

    Parameters
    ----------
    circuit:
        The circuit (any linear circuit; inductors are transformed away).
    spec:
        A :class:`~repro.nodal.reduce.TransferSpec`.
    admittance_transform:
        Set to False when the circuit is already in admittance form.
    """
    if admittance_transform:
        circuit = to_admittance_form(circuit)
    sampler = NetworkFunctionSampler(circuit, spec, method=method)
    if num_points is None:
        num_points = sampler.max_polynomial_degree() + 1
    points = unit_circle_points(num_points)
    samples = sampler.sample_many(points, factors.conductance, factors.frequency)

    results = {}
    for kind in ("numerator", "denominator"):
        pairs = [getattr(sample, kind) for sample in samples]
        values, exponent = inverse_dft_scaled(pairs, method=dft_method)
        admittance_order = (sampler.formulation.denominator_admittance_order
                            if kind == "denominator"
                            else sampler.formulation.numerator_admittance_order)
        try:
            region = find_valid_region(values, exponent, significant_digits)
        except InterpolationError:
            region = None
        results[kind] = InterpolationResult(
            kind=kind,
            factors=factors,
            num_points=num_points,
            normalized=values,
            common_exponent=exponent,
            admittance_order=admittance_order,
            region=region,
            significant_digits=significant_digits,
        )
    return NetworkInterpolation(numerator=results["numerator"],
                                denominator=results["denominator"])
