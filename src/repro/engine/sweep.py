"""Batched frequency-sweep factorization engine, shared by every formulation.

One sweep is "factor ``A(s_k) = g·G + s_k·f·C`` at every point of a frequency
grid, reusing everything that does not depend on the frequency".  The engine
owns the whole strategy:

* **dispatch** — dense at or below the :mod:`repro.linalg.config` cutoff,
  sparse above (``method="auto"``), or forced either way;
* **dense path** — the sweep is assembled chunk by chunk (so the ``(K, n, n)``
  stack never outgrows a fixed memory budget) and factored with
  :func:`~repro.linalg.dense.batched_dense_lu`, one vectorized elimination
  per chunk;
* **sparse path** — the union sparsity structure is assembled once, a
  fill-reducing elimination order (:mod:`repro.linalg.ordering`, AMD by
  default) is computed from it, the ordered pivot search runs at the first
  point and every other point is served by numeric refactorization
  (:func:`~repro.linalg.lu.sparse_lu_reusing`), falling back to a fresh
  ordered factorization only when a reused pivot degrades.

:class:`SweepEngine` streams factors (factor, use, discard — the memory-light
shape of ``ac_sweep``); :class:`SweepFactors` keeps them (the shape of
``ac_factor_sweep`` and the rank-1 screening, where every subsequent solve
costs O(n²) instead of an O(n³) refactorization).  The MNA sweeps
(:mod:`repro.mna.solve`), the interpolation batch sampler
(:mod:`repro.nodal.batch`) and the sensitivity engine
(:mod:`repro.analysis.sensitivity`) are all thin adapters over this module.
"""

from __future__ import annotations

import numpy as np

from ..errors import (FormulationError, SingularMatrixError,
                      SolveFailureError)
from ..linalg.config import (SPARSE_ORDERINGS, dense_cutoff, sparse_ordering,
                             use_dense)
from ..linalg.dense import batched_dense_lu, sweep_chunk_size
from ..linalg.lu import sparse_lu_reusing
from ..linalg.ordering import fill_reducing_order
from ..linalg.sparse import SparseMatrix
from .resilience import (SolvePolicy, SweepReport, resilient_sparse_solve,
                         solve_stack_resilient)

__all__ = ["SweepEngine", "SweepFactors"]

_METHODS = ("auto", "dense", "sparse")

#: Failure modes of the resilient solve entry points: ``"raise"`` aborts on
#: the first unrecoverable point (the legacy behavior when no policy is
#: given), ``"quarantine"`` masks it to NaN and records it in the engine's
#: :attr:`SweepEngine.last_report`.
_FAILURE_MODES = ("raise", "quarantine")


class SweepEngine:
    """Factorization strategy for one formulation across frequency sweeps.

    Parameters
    ----------
    formulation:
        Any :class:`~repro.engine.formulation.Formulation` (an
        :class:`~repro.mna.builder.MnaSystem` or a
        :class:`~repro.nodal.admittance.NodalFormulation`).
    method:
        ``"auto"`` (dense at or below the configured cutoff), ``"dense"`` or
        ``"sparse"``.
    singular_label:
        Noun used in :class:`~repro.errors.SingularMatrixError` messages
        (``"matrix"``, ``"MNA matrix"``, …), so adapters keep their historic
        diagnostics.
    ordering:
        Sparse elimination-ordering strategy (see
        :data:`~repro.linalg.config.SPARSE_ORDERINGS`): ``"auto"`` / ``"amd"``
        / ``"rcm"`` / ``"natural"`` pre-order the merged structure once and
        eliminate along that fixed order, ``"markowitz"`` keeps the dynamic
        per-step pivot search.  Default: the
        :func:`~repro.linalg.config.sparse_ordering` configuration.

    Attributes
    ----------
    factorization_count:
        Full (pivot-searching) factorizations performed; the dense path
        counts one per sweep point.
    refactorization_count:
        Structure-reusing numeric refactorizations (sparse path only).
    dense_cutoff:
        The dense/sparse dispatch cutoff, snapshotted at construction
        (``REPRO_DENSE_CUTOFF`` is read once per engine, so one engine never
        mixes backends when the environment changes mid-life).

    The engine instance carries the sparse pivot pattern across calls, so a
    long-lived engine (e.g. inside a :class:`~repro.nodal.batch.BatchSampler`)
    keeps refactoring cheaply from one sweep to the next.
    """

    def __init__(self, formulation, method="auto", singular_label="matrix",
                 ordering=None):
        if method not in _METHODS:
            raise FormulationError(f"unknown factorization method {method!r}")
        if ordering is None:
            ordering = sparse_ordering()
        elif ordering not in SPARSE_ORDERINGS:
            raise FormulationError(
                f"unknown sparse ordering {ordering!r}")
        self.formulation = formulation
        self.method = method
        self.singular_label = singular_label
        self.ordering = ordering
        self.dense_cutoff = dense_cutoff()
        self.factorization_count = 0
        self.refactorization_count = 0
        #: :class:`~repro.engine.resilience.SweepReport` of the most recent
        #: resilient solve (``None`` after a legacy, non-resilient call).
        self.last_report = None
        self._sparse_pattern = None
        self._column_order = None

    @property
    def dimension(self):
        """Number of unknowns of the underlying formulation."""
        return self.formulation.dimension

    @property
    def is_dense(self):
        """True when this engine factors through the dense (batched) LU."""
        return use_dense(self.formulation.dimension, self.method,
                         cutoff=self.dense_cutoff)

    def column_order(self):
        """The engine's fill-reducing elimination order (``None`` = Markowitz).

        Computed once per engine from the merged sparsity structure — purely
        structural, so it is shared by every sweep point, every parameter
        sample and every refactorization fallback this engine performs.
        """
        if self.ordering == "markowitz":
            return None
        if self._column_order is None:
            keys, __, __ = self.formulation.merged_sparse_structure()
            self._column_order = fill_reducing_order(
                self.formulation.dimension, keys, method=self.ordering)
        return self._column_order

    # ------------------------------------------------------------------ #
    # streaming factor production
    # ------------------------------------------------------------------ #

    def dense_chunks(self, s, conductance_scale=1.0, frequency_scale=1.0):
        """Yield ``(start, BatchedDenseLU)`` chunks covering the sweep.

        Chunks are sized by :func:`~repro.linalg.dense.sweep_chunk_size` so
        the assembled stack stays within a fixed memory budget regardless of
        grid length.

        Raises
        ------
        SingularMatrixError
            When the assembled matrix is singular at some sweep point.
        """
        chunk = sweep_chunk_size(self.formulation.dimension)
        for start in range(0, len(s), chunk):
            block = s[start:start + chunk]
            stack = self.formulation.assemble_batch(block, conductance_scale,
                                                    frequency_scale)
            factorization = batched_dense_lu(stack, overwrite=True)
            self.factorization_count += len(block)
            if factorization.singular.any():
                index = int(np.argmax(factorization.singular))
                raise SingularMatrixError(
                    f"{self.singular_label} is singular at sweep point "
                    f"{start + index} (s={complex(block[index])!r})"
                )
            yield start, factorization

    def sparse_factors(self, s, conductance_scale=1.0, frequency_scale=1.0):
        """Yield ``(k, LUFactorization)`` per sweep point.

        The union sparsity structure comes from the formulation's cache; the
        pivot order found at the first point — along the engine's
        fill-reducing :meth:`column_order` — is replayed everywhere else via
        numeric refactorization, with a fresh ordered search as fallback.
        """
        keys, constant_values, dynamic_values = (
            self.formulation.merged_sparse_structure())
        n = self.formulation.dimension
        order = self.column_order()
        base = (constant_values if conductance_scale == 1.0
                else conductance_scale * constant_values)
        for k, point in enumerate(s):
            factor = complex(point)
            if frequency_scale != 1.0:
                factor = factor * frequency_scale
            values = base + factor * dynamic_values
            matrix = SparseMatrix.from_entries(n, n,
                                               zip(keys, values.tolist()))
            factorization, self._sparse_pattern, refactored = (
                sparse_lu_reusing(matrix, self._sparse_pattern,
                                  column_order=order))
            if refactored:
                self.refactorization_count += 1
            else:
                self.factorization_count += 1
            yield k, factorization

    # ------------------------------------------------------------------ #
    # whole-sweep conveniences
    # ------------------------------------------------------------------ #

    def solve_sweep(self, s, rhs, conductance_scale=1.0,
                    frequency_scale=1.0, *, on_failure="raise",
                    policy=None) -> np.ndarray:
        """Solve ``A(s_k) x_k = rhs`` at every point, discarding the factors.

        ``rhs`` is one shared right-hand side (broadcast over the sweep).
        Returns ``(K, n)`` complex solutions in input order.

        ``on_failure="raise"`` with no ``policy`` (the default) is the legacy
        path: the first singular point raises
        :class:`~repro.errors.SingularMatrixError` and results are
        bit-identical to prior releases.  Supplying a
        :class:`~repro.engine.resilience.SolvePolicy` (or
        ``on_failure="quarantine"``) activates the escalation chain: failing
        points are recovered through progressively more careful
        factorizations, and unrecoverable ones either abort (``"raise"``)
        or are masked to NaN (``"quarantine"``) — either way the outcome is
        recorded in :attr:`last_report`.
        """
        if on_failure not in _FAILURE_MODES:
            raise FormulationError(f"unknown failure mode {on_failure!r}")
        s = np.asarray(s, dtype=complex)
        solutions = np.zeros((len(s), self.formulation.dimension),
                             dtype=complex)
        if on_failure == "raise" and policy is None:
            self.last_report = None
            if len(s) == 0:
                return solutions
            if self.is_dense:
                for start, factorization in self.dense_chunks(
                        s, conductance_scale, frequency_scale):
                    solutions[start:start + factorization.batch] = (
                        factorization.solve(rhs))
            else:
                for k, factorization in self.sparse_factors(
                        s, conductance_scale, frequency_scale):
                    solutions[k] = factorization.solve(rhs)
            return solutions

        policy = policy or SolvePolicy()
        report = SweepReport(label=self.singular_label, kind="sweep point",
                             total=len(s))
        self.last_report = report
        if len(s) == 0:
            return solutions
        if self.is_dense:
            chunk = sweep_chunk_size(self.formulation.dimension)
            for start in range(0, len(s), chunk):
                block = s[start:start + chunk]
                stack = self.formulation.assemble_batch(
                    block, conductance_scale, frequency_scale)
                self.factorization_count += len(block)
                before = len(report.failures)

                def indexer(member, start=start, block=block):
                    point = start + member
                    return point, (f"sweep point {point} "
                                   f"(s={complex(block[member])!r})")

                solutions[start:start + len(block)] = solve_stack_resilient(
                    stack, rhs, policy, report, indexer)
                if on_failure == "raise" and len(report.failures) > before:
                    failure = report.failures[before]
                    raise SolveFailureError(
                        f"{self.singular_label} is singular at "
                        f"{failure.description}: {failure.reason}",
                        sweep_point=failure.index)
        else:
            keys, constant_values, dynamic_values = (
                self.formulation.merged_sparse_structure())
            n = self.formulation.dimension
            order = self.column_order()
            base = (constant_values if conductance_scale == 1.0
                    else conductance_scale * constant_values)
            for k, point in enumerate(s):
                factor = complex(point)
                if frequency_scale != 1.0:
                    factor = factor * frequency_scale
                values = base + factor * dynamic_values
                matrix = SparseMatrix.from_entries(n, n,
                                                   zip(keys, values.tolist()))
                solutions[k] = self._resilient_sparse_point(
                    matrix, rhs, policy, report, k,
                    f"sweep point {k} (s={factor!r})", order, on_failure)
        return solutions

    def _resilient_sparse_point(self, matrix, rhs, policy, report, index,
                                description, order, on_failure):
        """One resilient sparse solve, with engine counter / report upkeep."""
        had_pattern = self._sparse_pattern is not None
        try:
            x, diagnostics, self._sparse_pattern = resilient_sparse_solve(
                matrix, rhs, policy, self._sparse_pattern, order)
        except SolveFailureError as error:
            self.factorization_count += 1
            escalations = (error.diagnostics.escalations
                           if error.diagnostics is not None else ())
            report.record_failure(index, description, str(error), escalations)
            if on_failure == "raise":
                raise SolveFailureError(
                    f"{self.singular_label} is singular at {description}: "
                    f"{error}", sweep_point=index,
                    diagnostics=error.diagnostics) from error
            return np.nan
        if diagnostics.stage == "fast":
            if had_pattern:
                self.refactorization_count += 1
            else:
                self.factorization_count += 1
            report.record_fast()
            if diagnostics.degraded:
                report.record_degraded(index, diagnostics.condition)
        else:
            self.factorization_count += 1
            report.record_recovery(index, diagnostics)
        return x

    # ------------------------------------------------------------------ #
    # the parameter axis
    # ------------------------------------------------------------------ #

    def iter_param_sweep(self, s, names, admittance_scales, rhs,
                         conductance_scale=1.0, frequency_scale=1.0):
        """Yield ``(sample, (K, n) solutions)`` one ensemble member at a time.

        The streaming core of :meth:`solve_param_sweep`: at no point does
        more than one assembly chunk (bounded by
        :func:`~repro.linalg.dense.sweep_chunk_size`) plus one sample's
        ``(K, n)`` solution block live in memory, so a 10⁴-node ensemble
        sweep never materializes the full ``M × K`` stack.  Dense systems
        group as many whole samples per chunk as the budget allows and split
        the *frequency* axis once a single sample's sweep exceeds it; sparse
        systems stream per sample / per point through the engine's ordered
        pivot pattern.
        """
        s = np.asarray(s, dtype=complex)
        scales = np.asarray(admittance_scales)
        rhs = np.asarray(rhs, dtype=complex)
        # Materialize once: the name tuple is consumed per chunk below (and
        # twice on the sparse path), so a generator must not drain early.
        names = tuple(names)
        num_samples = scales.shape[0]
        n = self.formulation.dimension
        if num_samples == 0 or len(s) == 0:
            return
        if self.is_dense:
            budget = sweep_chunk_size(n)
            if len(s) > budget:
                # One sample's sweep exceeds the chunk budget: keep samples
                # whole and stream the frequency axis instead.
                for sample in range(num_samples):
                    block = scales[sample:sample + 1]
                    solutions = np.empty((len(s), n), dtype=complex)
                    for start in range(0, len(s), budget):
                        points = s[start:start + budget]
                        stack = self.formulation.assemble_param_batch(
                            points, names, block, conductance_scale,
                            frequency_scale)
                        flat = stack.reshape(len(points), n, n)
                        factorization = batched_dense_lu(flat, overwrite=True)
                        self.factorization_count += flat.shape[0]
                        if factorization.singular.any():
                            index = int(np.argmax(factorization.singular))
                            raise SingularMatrixError(
                                f"{self.singular_label} is singular for "
                                f"sample {sample} at sweep point "
                                f"{start + index}")
                        solutions[start:start + len(points)] = (
                            factorization.solve(rhs))
                    yield sample, solutions
                return
            chunk = max(1, budget // max(1, len(s)))
            for start in range(0, num_samples, chunk):
                block = scales[start:start + chunk]
                stack = self.formulation.assemble_param_batch(
                    s, names, block, conductance_scale, frequency_scale)
                flat = stack.reshape(len(block) * len(s), n, n)
                factorization = batched_dense_lu(flat, overwrite=True)
                self.factorization_count += flat.shape[0]
                if factorization.singular.any():
                    index = int(np.argmax(factorization.singular))
                    raise SingularMatrixError(
                        f"{self.singular_label} is singular for sample "
                        f"{start + index // len(s)} at sweep point "
                        f"{index % len(s)}")
                solved = factorization.solve(rhs).reshape(len(block), len(s),
                                                          n)
                for offset in range(len(block)):
                    yield start + offset, solved[offset]
            return

        # Sparse path: affine update of the merged-structure values, pivot
        # pattern shared across the whole ensemble.
        keys, __, __ = self.formulation.merged_sparse_structure()
        order = self.column_order()
        for sample, constant_sample, dynamic_sample in (
                self._sparse_param_samples(names, scales, conductance_scale)):
            solutions = np.empty((len(s), n), dtype=complex)
            for k, point in enumerate(s):
                factor = complex(point)
                if frequency_scale != 1.0:
                    factor = factor * frequency_scale
                values = constant_sample + factor * dynamic_sample
                matrix = SparseMatrix.from_entries(
                    n, n, zip(keys, values.tolist()))
                factorization, self._sparse_pattern, refactored = (
                    sparse_lu_reusing(matrix, self._sparse_pattern,
                                      column_order=order))
                if refactored:
                    self.refactorization_count += 1
                else:
                    self.factorization_count += 1
                solutions[k] = factorization.solve(rhs)
            yield sample, solutions

    def _sparse_param_samples(self, names, scales, conductance_scale):
        """Yield ``(sample, constant_values, dynamic_values)`` per member.

        The vectorized affine update shared by the legacy and resilient
        sparse parameter sweeps: sample ``m`` perturbs the merged-structure
        value vectors by ``(scale − 1)·(element stamp)`` per scaled element,
        reproducing :meth:`iter_param_sweep`'s historic arithmetic exactly.
        """
        keys, constant_values, dynamic_values = (
            self.formulation.merged_sparse_structure())
        position = {key: index for index, key in enumerate(keys)}
        incidence_u, incidence_v, conductances, capacitances = (
            self.formulation.stamp_columns(names))
        entry_positions: list = []
        entry_weights: list = []
        entry_elements: list = []
        for column in range(incidence_u.shape[1]):
            rows = np.flatnonzero(incidence_u[:, column])
            cols = np.flatnonzero(incidence_v[:, column])
            for row in rows:
                for col in cols:
                    key = (int(row), int(col))
                    if key not in position:
                        raise FormulationError(
                            f"stamp entry {key} of element "
                            f"{names[column]!r} is outside the "
                            "assembled structure")
                    entry_positions.append(position[key])
                    entry_weights.append(incidence_u[row, column]
                                         * incidence_v[col, column])
                    entry_elements.append(column)
        entry_positions = np.array(entry_positions, dtype=np.intp)
        entry_weights = np.array(entry_weights)
        entry_elements = np.array(entry_elements, dtype=np.intp)
        delta = scales - 1.0
        for sample in range(scales.shape[0]):
            constant_sample = constant_values.astype(complex).copy()
            dynamic_sample = dynamic_values.astype(complex).copy()
            np.add.at(constant_sample, entry_positions,
                      delta[sample, entry_elements]
                      * conductances[entry_elements] * entry_weights)
            np.add.at(dynamic_sample, entry_positions,
                      delta[sample, entry_elements]
                      * capacitances[entry_elements] * entry_weights)
            if conductance_scale != 1.0:
                constant_sample = conductance_scale * constant_sample
            yield sample, constant_sample, dynamic_sample

    def solve_param_sweep(self, s, names, admittance_scales, rhs,
                          conductance_scale=1.0, frequency_scale=1.0, *,
                          on_failure="raise", policy=None) -> np.ndarray:
        """Solve ``A_m(s_k) x = rhs`` over samples × frequencies.

        The parameter-space companion of :meth:`solve_sweep`: sample ``m``
        scales the admittances of ``names`` by ``admittance_scales[m]``
        (see :meth:`~repro.engine.formulation.FormulationBase.assemble_param_batch`).
        Dense systems assemble the ``(M·K, n, n)`` stack chunk by chunk
        (chunking whichever of the sample / frequency axes keeps the stack
        inside the memory budget) and factor through
        :func:`~repro.linalg.dense.batched_dense_lu`; sparse systems update
        the merged-structure values per sample and reuse the engine's ordered
        pivot pattern across every sample and frequency.  Memory-bounded
        consumers should iterate :meth:`iter_param_sweep` instead of
        materializing the ``(M, K, n)`` result this convenience returns.

        Returns ``(M, K, n)`` complex solutions.  Accurate to rounding
        relative to rebuilding each perturbed system (the bit-exact ensemble
        engine is :func:`repro.montecarlo.ensemble_sweep`).

        ``on_failure`` / ``policy`` follow :meth:`solve_sweep`, at *sample*
        granularity: a sample with an unrecoverable point is quarantined
        whole (its ``(K, n)`` block masked to NaN) under ``"quarantine"``,
        with the outcome recorded in :attr:`last_report`.
        """
        if on_failure not in _FAILURE_MODES:
            raise FormulationError(f"unknown failure mode {on_failure!r}")
        s = np.asarray(s, dtype=complex)
        scales = np.asarray(admittance_scales)
        n = self.formulation.dimension
        solutions = np.zeros((scales.shape[0], len(s), n), dtype=complex)
        if on_failure == "raise" and policy is None:
            self.last_report = None
            for sample, block in self.iter_param_sweep(
                    s, names, scales, rhs, conductance_scale,
                    frequency_scale):
                solutions[sample] = block
            return solutions

        policy = policy or SolvePolicy()
        num_samples = scales.shape[0]
        report = SweepReport(label=self.singular_label, kind="sample",
                             total=num_samples)
        self.last_report = report
        if num_samples == 0 or len(s) == 0:
            return solutions
        if self.is_dense:
            names = tuple(names)
            budget = sweep_chunk_size(n)
            for sample in range(num_samples):
                block_scales = scales[sample:sample + 1]
                before = len(report.failures)
                for start in range(0, len(s), budget):
                    points = s[start:start + budget]
                    stack = self.formulation.assemble_param_batch(
                        points, names, block_scales, conductance_scale,
                        frequency_scale).reshape(len(points), n, n)
                    self.factorization_count += len(points)

                    def indexer(member, sample=sample, start=start):
                        return sample, (f"sample {sample} at sweep point "
                                        f"{start + member}")

                    solutions[sample, start:start + len(points)] = (
                        solve_stack_resilient(stack, rhs, policy, report,
                                              indexer))
                if len(report.failures) > before:
                    solutions[sample] = np.nan
                    if on_failure == "raise":
                        failure = report.failures[before]
                        raise SolveFailureError(
                            f"{self.singular_label} is singular for "
                            f"{failure.description}: {failure.reason}",
                            sample=sample)
        else:
            keys, __, __ = self.formulation.merged_sparse_structure()
            order = self.column_order()
            for sample, constant_sample, dynamic_sample in (
                    self._sparse_param_samples(names, scales,
                                               conductance_scale)):
                before = len(report.failures)
                for k, point in enumerate(s):
                    factor = complex(point)
                    if frequency_scale != 1.0:
                        factor = factor * frequency_scale
                    values = constant_sample + factor * dynamic_sample
                    matrix = SparseMatrix.from_entries(
                        n, n, zip(keys, values.tolist()))
                    try:
                        solutions[sample, k] = self._resilient_sparse_point(
                            matrix, rhs, policy, report, sample,
                            f"sample {sample} at sweep point {k}", order,
                            on_failure)
                    except SolveFailureError as error:
                        raise SolveFailureError(
                            str(error), sample=sample, sweep_point=k,
                            diagnostics=error.diagnostics) from error
                    if len(report.failures) > before:
                        break
                if len(report.failures) > before:
                    solutions[sample] = np.nan
        return solutions

    def factor_sweep(self, s, conductance_scale=1.0,
                     frequency_scale=1.0) -> "SweepFactors":
        """Factor at every point and *keep* the factors (see :class:`SweepFactors`)."""
        s = np.asarray(list(s), dtype=complex)
        if self.is_dense:
            factors = list(self.dense_chunks(s, conductance_scale,
                                             frequency_scale))
        else:
            factors = [factorization for __, factorization
                       in self.sparse_factors(s, conductance_scale,
                                              frequency_scale)]
        return SweepFactors(self.formulation, s, self.is_dense, factors)


class SweepFactors:
    """Cached LU factors of ``A(s_k)`` across one whole frequency sweep.

    Where :meth:`SweepEngine.solve_sweep` factors, solves once and discards,
    this object *keeps* the factors — the dense path as chunked
    :class:`~repro.linalg.dense.BatchedDenseLU` stacks (same chunking as the
    streaming path, so solutions are bit-identical to it), the sparse path as
    one :class:`~repro.linalg.lu.LUFactorization` per point sharing the first
    point's pivot order.  Repeated solves against the same sweep — the
    baseline plus one solve per screened element in the rank-1 sensitivity
    engine — then cost O(n²) per right-hand side instead of an O(n³)
    refactorization.

    Build via :meth:`SweepEngine.factor_sweep` (or the
    :func:`repro.mna.solve.ac_factor_sweep` adapter).
    """

    def __init__(self, formulation, s_values, is_dense, factors):
        self.formulation = formulation
        self.s_values = s_values
        self.is_dense = is_dense
        #: Dense path: list of ``(start_index, BatchedDenseLU)`` chunks;
        #: sparse path: one LUFactorization per sweep point.
        self.factors = factors

    @property
    def num_points(self):
        """Number of sweep points covered by the cached factors."""
        return len(self.s_values)

    @property
    def dimension(self):
        """Number of unknowns per sweep point."""
        return self.formulation.dimension

    def solve(self, rhs) -> np.ndarray:
        """Solve ``A(s_k) x_k = rhs`` at every point; returns ``(K, n)``."""
        rhs = np.asarray(rhs, dtype=complex)
        solutions = np.zeros((len(self.s_values), self.dimension),
                             dtype=complex)
        if self.is_dense:
            for start, factorization in self.factors:
                solutions[start:start + factorization.batch] = (
                    factorization.solve(rhs))
        else:
            for k, factorization in enumerate(self.factors):
                solutions[k] = factorization.solve(rhs)
        return solutions

    def solve_columns(self, columns) -> np.ndarray:
        """Solve ``A(s_k) W = U`` for an ``(n, m)`` column stack at every point.

        Returns ``(K, n, m)`` — one solved column per right-hand-side column
        per sweep point.  The rank-1 screening pushes every element's
        incidence vector through the cached factors with a single call.
        """
        columns = np.asarray(columns, dtype=complex)
        if columns.ndim != 2 or columns.shape[0] != self.dimension:
            raise FormulationError(
                f"columns must be ({self.dimension}, m), got {columns.shape}"
            )
        solutions = np.zeros(
            (len(self.s_values), self.dimension, columns.shape[1]),
            dtype=complex)
        if self.is_dense:
            for start, factorization in self.factors:
                solutions[start:start + factorization.batch] = (
                    factorization.solve_matrix(columns))
        else:
            for k, factorization in enumerate(self.factors):
                solutions[k] = factorization.solve_many(columns)
        return solutions

    def members(self):
        """Yield one scalar factorization per sweep point, in order.

        Dense chunks are exposed through
        :meth:`~repro.linalg.dense.BatchedDenseLU.member` views, whose
        determinant / substitution arithmetic is bit-for-bit the per-point
        :func:`~repro.linalg.dense.dense_lu` path — this is what keeps the
        interpolation samples identical between batched and per-point
        evaluation.
        """
        if self.is_dense:
            for __, factorization in self.factors:
                for index in range(factorization.batch):
                    yield factorization.member(index)
        else:
            yield from self.factors

    def __repr__(self):
        kind = "dense" if self.is_dense else "sparse"
        return (f"SweepFactors(n={self.dimension}, points={self.num_points}, "
                f"path={kind!r})")
