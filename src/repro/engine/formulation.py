"""The formulation protocol shared by the MNA and nodal builders.

A *formulation* is an assembled linear-system description ``A(s) = g·G + s·f·C``
over some unknown vector, together with enough structure for the sweep engine
to factor and update it: the sparse ``(G, C)`` parts, the dimension, and
per-element rank-1 stamps.  :class:`repro.mna.builder.MnaSystem` (node
voltages + branch currents, no scaling) and
:class:`repro.nodal.admittance.NodalFormulation` (unknown node voltages with
Eq. (11) conductance / frequency scaling and forced-column RHS projection)
are the two implementations.

:class:`FormulationBase` carries the assembly-adjacent logic both builders
used to duplicate: cached dense ``(G, C)`` arrays, single-point sparse
assembly, batched ``(K, n, n)`` stack assembly, and the cached union sparsity
structure the sparse refactorization path iterates over.  Scale factors of
exactly ``1.0`` skip their multiplies, so unscaled users (MNA) assemble
bit-for-bit what they assembled before the refactor.
"""

from __future__ import annotations

from typing import Protocol, Tuple, runtime_checkable

import numpy as np

from ..linalg.sparse import SparseMatrix, merged_structure

__all__ = ["Formulation", "FormulationBase"]


@runtime_checkable
class Formulation(Protocol):
    """What the sweep engine requires of an assembled system description."""

    @property
    def dimension(self) -> int:
        """Number of unknowns (rows of the square system matrix)."""

    def sparse_parts(self) -> Tuple[SparseMatrix, SparseMatrix]:
        """The constant and frequency-proportional sparse parts ``(G, C)``."""

    def dense_parts(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached dense ``(G, C)`` arrays for the batched evaluation path."""

    def assemble(self, s, conductance_scale=1.0, frequency_scale=1.0):
        """``g·G + s·f·C`` as a :class:`SparseMatrix` at one frequency."""

    def assemble_batch(self, s_values, conductance_scale=1.0,
                       frequency_scale=1.0) -> np.ndarray:
        """``g·G + s_k·f·C`` for every ``s_k`` as one ``(K, n, n)`` stack."""

    def element_stamp(self, name):
        """One element's rank-1 contribution as a
        :class:`~repro.linalg.rank1.Rank1Stamp` (raises
        :class:`~repro.errors.FormulationError` for unstampable types)."""


class FormulationBase:
    """Shared assembly machinery for :class:`Formulation` implementations.

    Subclasses provide :meth:`sparse_parts` (and their own ``dimension``);
    this base derives everything the sweep engine consumes from it.  The
    caches are per-instance and lazily created, so subclasses need no
    cooperation in ``__init__``.
    """

    #: Lazily filled caches (class-level ``None`` doubles as "not built yet").
    _dense_parts_cache = None
    _merged_structure_cache = None

    def sparse_parts(self):
        """The constant and frequency-proportional sparse parts ``(G, C)``."""
        raise NotImplementedError

    def dense_parts(self):
        """Cached dense ``(G, C)`` arrays for the batched evaluation path.

        The sparse stamping matrices are converted exactly once; every batched
        sweep then assembles ``g·G + s_k·f·C`` with plain numpy arithmetic
        instead of per-point dictionary iteration.
        """
        if self._dense_parts_cache is None:
            constant, dynamic = self.sparse_parts()
            self._dense_parts_cache = (constant.to_dense(), dynamic.to_dense())
        return self._dense_parts_cache

    def merged_sparse_structure(self):
        """Cached union sparsity structure: keys plus G / C value arrays.

        This is what the sparse sweep path evaluates per point — only the
        values ``g·G + s_k·f·C`` change over a sweep, never the keys.
        """
        if self._merged_structure_cache is None:
            constant, dynamic = self.sparse_parts()
            self._merged_structure_cache = merged_structure(constant, dynamic)
        return self._merged_structure_cache

    def assemble(self, s, conductance_scale=1.0, frequency_scale=1.0):
        """``g·G + s·f·C`` as a new :class:`SparseMatrix`."""
        constant, dynamic = self.sparse_parts()
        if conductance_scale == 1.0:
            matrix = constant.copy()
        else:
            matrix = constant.scaled(conductance_scale)
        factor = complex(s)
        if frequency_scale != 1.0:
            factor = factor * frequency_scale
        for row, col, value in dynamic.entries():
            matrix.add(row, col, factor * value)
        return matrix

    def assemble_batch(self, s_values, conductance_scale=1.0,
                       frequency_scale=1.0) -> np.ndarray:
        """``g·G + s_k·f·C`` for every ``s_k`` as one ``(K, n, n)`` stack.

        Entry-for-entry this evaluates the same products as :meth:`assemble`,
        so batched sweeps reproduce the per-point matrices to the last bit.
        """
        s = np.asarray(s_values, dtype=complex)
        constant, dynamic = self.dense_parts()
        factors = s if frequency_scale == 1.0 else s * frequency_scale
        base = constant[None, :, :]
        if conductance_scale != 1.0:
            base = conductance_scale * base
        return base + factors[:, None, None] * dynamic[None, :, :]
