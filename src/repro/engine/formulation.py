"""The formulation protocol shared by the MNA and nodal builders.

A *formulation* is an assembled linear-system description ``A(s) = g·G + s·f·C``
over some unknown vector, together with enough structure for the sweep engine
to factor and update it: the sparse ``(G, C)`` parts, the dimension, and
per-element rank-1 stamps.  :class:`repro.mna.builder.MnaSystem` (node
voltages + branch currents, no scaling) and
:class:`repro.nodal.admittance.NodalFormulation` (unknown node voltages with
Eq. (11) conductance / frequency scaling and forced-column RHS projection)
are the two implementations.

:class:`FormulationBase` carries the assembly-adjacent logic both builders
used to duplicate: cached dense ``(G, C)`` arrays, single-point sparse
assembly, batched ``(K, n, n)`` stack assembly, and the cached union sparsity
structure the sparse refactorization path iterates over.  Scale factors of
exactly ``1.0`` skip their multiplies, so unscaled users (MNA) assemble
bit-for-bit what they assembled before the refactor.
"""

from __future__ import annotations

from typing import Protocol, Tuple, runtime_checkable

import numpy as np

from ..linalg.sparse import SparseMatrix, merged_structure

__all__ = ["Formulation", "FormulationBase"]


@runtime_checkable
class Formulation(Protocol):
    """What the sweep engine requires of an assembled system description."""

    @property
    def dimension(self) -> int:
        """Number of unknowns (rows of the square system matrix)."""

    def sparse_parts(self) -> Tuple[SparseMatrix, SparseMatrix]:
        """The constant and frequency-proportional sparse parts ``(G, C)``."""

    def dense_parts(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached dense ``(G, C)`` arrays for the batched evaluation path."""

    def assemble(self, s, conductance_scale=1.0, frequency_scale=1.0):
        """``g·G + s·f·C`` as a :class:`SparseMatrix` at one frequency."""

    def assemble_batch(self, s_values, conductance_scale=1.0,
                       frequency_scale=1.0) -> np.ndarray:
        """``g·G + s_k·f·C`` for every ``s_k`` as one ``(K, n, n)`` stack."""

    def element_stamp(self, name):
        """One element's rank-1 contribution as a
        :class:`~repro.linalg.rank1.Rank1Stamp` (raises
        :class:`~repro.errors.FormulationError` for unstampable types)."""


class FormulationBase:
    """Shared assembly machinery for :class:`Formulation` implementations.

    Subclasses provide :meth:`sparse_parts` (and their own ``dimension``);
    this base derives everything the sweep engine consumes from it.  The
    caches are per-instance and lazily created, so subclasses need no
    cooperation in ``__init__``.
    """

    #: Lazily filled caches (class-level ``None`` doubles as "not built yet").
    _dense_parts_cache = None
    _merged_structure_cache = None
    _stamp_columns_cache = None

    def sparse_parts(self):
        """The constant and frequency-proportional sparse parts ``(G, C)``."""
        raise NotImplementedError

    def dense_parts(self):
        """Cached dense ``(G, C)`` arrays for the batched evaluation path.

        The sparse stamping matrices are converted exactly once; every batched
        sweep then assembles ``g·G + s_k·f·C`` with plain numpy arithmetic
        instead of per-point dictionary iteration.
        """
        if self._dense_parts_cache is None:
            constant, dynamic = self.sparse_parts()
            self._dense_parts_cache = (constant.to_dense(), dynamic.to_dense())
        return self._dense_parts_cache

    def merged_sparse_structure(self):
        """Cached union sparsity structure: keys plus G / C value arrays.

        This is what the sparse sweep path evaluates per point — only the
        values ``g·G + s_k·f·C`` change over a sweep, never the keys.
        """
        if self._merged_structure_cache is None:
            constant, dynamic = self.sparse_parts()
            self._merged_structure_cache = merged_structure(constant, dynamic)
        return self._merged_structure_cache

    def assemble(self, s, conductance_scale=1.0, frequency_scale=1.0):
        """``g·G + s·f·C`` as a new :class:`SparseMatrix`."""
        constant, dynamic = self.sparse_parts()
        if conductance_scale == 1.0:
            matrix = constant.copy()
        else:
            matrix = constant.scaled(conductance_scale)
        factor = complex(s)
        if frequency_scale != 1.0:
            factor = factor * frequency_scale
        for row, col, value in dynamic.entries():
            matrix.add(row, col, factor * value)
        return matrix

    def assemble_batch(self, s_values, conductance_scale=1.0,
                       frequency_scale=1.0) -> np.ndarray:
        """``g·G + s_k·f·C`` for every ``s_k`` as one ``(K, n, n)`` stack.

        Entry-for-entry this evaluates the same products as :meth:`assemble`,
        so batched sweeps reproduce the per-point matrices to the last bit.
        """
        s = np.asarray(s_values, dtype=complex)
        constant, dynamic = self.dense_parts()
        factors = s if frequency_scale == 1.0 else s * frequency_scale
        base = constant[None, :, :]
        if conductance_scale != 1.0:
            base = conductance_scale * base
        return base + factors[:, None, None] * dynamic[None, :, :]

    # ------------------------------------------------------------------ #
    # the parameter axis
    # ------------------------------------------------------------------ #

    def stamp_columns(self, names):
        """Cached per-element rank-1 incidence columns of ``names``.

        Returns ``(U, V, g, c)`` — ``(n, E)`` output/control incidence
        matrices plus ``(E,)`` conductance and capacitance vectors, one
        column per element, from :meth:`element_stamp`.  This is the stamp
        incidence every parameter-space evaluation contracts against, built
        (and kept) once per distinct element tuple.

        Raises
        ------
        FormulationError
            For elements without a rank-1 admittance stamp.
        """
        key = tuple(str(name) for name in names)
        if self._stamp_columns_cache is None:
            self._stamp_columns_cache = {}
        cached = self._stamp_columns_cache.get(key)
        if cached is None:
            stamps = [self.element_stamp(name) for name in key]
            cached = (
                np.column_stack([stamp.u for stamp in stamps]),
                np.column_stack([stamp.v for stamp in stamps]),
                np.array([stamp.conductance for stamp in stamps]),
                np.array([stamp.capacitance for stamp in stamps]),
            )
            self._stamp_columns_cache[key] = cached
        return cached

    def assemble_param_batch(self, s_values, names, admittance_scales,
                             conductance_scale=1.0,
                             frequency_scale=1.0) -> np.ndarray:
        """``(M, K, n, n)`` stack over samples × frequencies.

        The assembled parts are *affine* in the element admittances, so
        sample ``m`` differs from the base assembly by the rank-1 updates
        ``(scale_me − 1)·y_e·u_e·v_eᵀ`` — one einsum over the cached stamp
        incidence of :meth:`stamp_columns`, then the ordinary broadcast over
        the frequency axis.  Accurate to rounding relative to re-stamping a
        perturbed circuit (the bit-exact re-stamping lives in
        :class:`repro.montecarlo.program.ValueProgram`).

        Parameters
        ----------
        s_values:
            ``(K,)`` complex frequencies.
        names:
            Elements whose admittance varies (must have rank-1 stamps).
        admittance_scales:
            ``(M, E)`` relative admittance multipliers, one row per sample
            (``1.0`` = nominal; note a resistor whose *value* scales by ``p``
            has admittance scale ``1/p``).

        Notes
        -----
        The returned stack is dense ``M·K·n²`` complex — callers sweeping
        large ensembles should chunk the sample *and* frequency axes (as
        :meth:`repro.engine.sweep.SweepEngine.iter_param_sweep` does) rather
        than materialize the whole ensemble.
        """
        s = np.asarray(s_values, dtype=complex)
        scales = np.asarray(admittance_scales)
        # Materialize once: a generator argument must survive both the shape
        # check and the stamp-column lookup below.
        names = tuple(names)
        if scales.ndim != 2 or scales.shape[1] != len(names):
            raise ValueError(
                f"admittance_scales must be (M, {len(names)}), got "
                f"{scales.shape}")
        incidence_u, incidence_v, conductances, capacitances = (
            self.stamp_columns(names))
        delta = scales - 1.0
        constant, dynamic = self.dense_parts()
        constant = constant[None, :, :] + np.einsum(
            "me,ne,pe->mnp", delta * conductances[None, :], incidence_u,
            incidence_v)
        dynamic = dynamic[None, :, :] + np.einsum(
            "me,ne,pe->mnp", delta * capacitances[None, :], incidence_u,
            incidence_v)
        factors = s if frequency_scale == 1.0 else s * frequency_scale
        if conductance_scale != 1.0:
            constant = conductance_scale * constant
        return (constant[:, None, :, :]
                + factors[None, :, None, None] * dynamic[:, None, :, :])
