"""Formulation-agnostic linear-system engine.

Every workload in this library — interpolation sampling (Eqs. 7–10), SBG
element screening, AC verification sweeps — reduces to "evaluate the same
``G + s·C`` system at many complex frequencies under slightly different
conditions".  This package owns that machinery once, for every formulation:

* :mod:`repro.engine.formulation` — the :class:`~repro.engine.formulation.Formulation`
  protocol (sparse ``(G, C)`` parts, dimension, ``element_stamp``) plus the
  :class:`~repro.engine.formulation.FormulationBase` mixin providing shared
  assembly: cached dense parts, single-point sparse assembly, batched
  ``(K, n, n)`` stack assembly and the cached union sparsity structure.
  :class:`repro.mna.builder.MnaSystem` and
  :class:`repro.nodal.admittance.NodalFormulation` both implement it.
* :mod:`repro.engine.sweep` — the batched frequency-sweep core:
  dense/sparse dispatch against :mod:`repro.linalg.config`, chunked batched
  LU, numeric refactorization with pivot-pattern reuse, and
  :class:`~repro.engine.sweep.SweepFactors` (kept factors with batched
  ``solve`` / ``solve_columns`` and bit-exact per-point member views).
  ``mna.ac_sweep`` / ``ac_factor_sweep``, ``nodal.BatchSampler`` and the
  rank-1 sensitivity screening are thin adapters over this module.
* :mod:`repro.engine.session` — :class:`~repro.engine.session.AnalysisSession`,
  a circuit-keyed (content-hashed) cache of built formulations, sweep
  factorizations and numerical references, so chained workloads — Bode, then
  sensitivity screening, then SBG, then interpolation on the same circuit —
  stop rebuilding from scratch.
"""

from .formulation import Formulation, FormulationBase
from .resilience import (SolveDiagnostics, SolvePolicy, SweepReport,
                         resilient_dense_solve, resilient_sparse_solve,
                         reset_telemetry, telemetry_snapshot)
from .session import AnalysisSession
from .sweep import SweepEngine, SweepFactors

__all__ = [
    "Formulation",
    "FormulationBase",
    "SweepEngine",
    "SweepFactors",
    "AnalysisSession",
    "SolvePolicy",
    "SolveDiagnostics",
    "SweepReport",
    "resilient_dense_solve",
    "resilient_sparse_solve",
    "telemetry_snapshot",
    "reset_telemetry",
]
