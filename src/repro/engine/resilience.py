"""Resilient solve layer: escalation policies, diagnostics and quarantine.

The batched sweep and ensemble engines are throughput-first: one singular or
ill-conditioned matrix aborts a whole run.  This module wraps those kernels in
an **escalation chain** driven by structured diagnostics, so a production
sweep can either recover a failing point through progressively more careful
factorizations or quarantine it with a precise, machine-readable report:

* **fast** — the batched kernel the engine would have used anyway
  (:func:`~repro.linalg.dense.batched_dense_lu` /
  :func:`~repro.linalg.dense.batched_solve` on the dense paths, pivot-pattern
  refactorization on the sparse path);
* **bitexact** — the scalar reference kernel (:func:`~repro.linalg.dense.dense_lu`,
  or a fresh *ordered* sparse factorization), whose factors are the
  batched kernel's bit-for-bit;
* **fresh** (sparse only) — a full Markowitz pivot search, abandoning the
  fill-reducing order in favour of numerical safety;
* **regularized** — factor ``A + εI`` as a last resort, then validate the
  solution against the **original** ``A``: an exactly singular system still
  fails its residual test here and is quarantined rather than silently
  "solved".

A stage is *accepted* only when its solution is finite and its scaled
residual ``‖Ax − b‖∞ / (‖A‖₁·‖x‖∞ + ‖b‖∞)`` — after up to
:attr:`SolvePolicy.refinement_steps` rounds of iterative refinement — is at
or below the policy's residual limit.  A 1-norm condition estimate (Hager's
method on the packed dense LU, probe vectors on the sparse factorization)
above the policy's condition limit flags the solution *degraded*: recorded,
never silently dropped.  Every escalation is recorded in
:class:`SolveDiagnostics`; per-sweep aggregation lives in
:class:`SweepReport`; process-wide counters in :data:`TELEMETRY` (surfaced
through :meth:`repro.engine.session.AnalysisSession.stats`).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from ..errors import LinAlgError, SingularMatrixError, SolveFailureError
from ..linalg import config as linalg_config
from ..linalg.dense import DenseLU, batched_dense_lu, batched_solve, dense_lu
from ..linalg.lu import sparse_lu, sparse_lu_reusing

__all__ = ["SolvePolicy", "SolveDiagnostics", "EscalationRecord",
           "FailureRecord", "RecoveryRecord", "SweepReport",
           "scaled_residual", "consistency_residual",
           "dense_condition_estimate",
           "sparse_condition_estimate", "resilient_dense_solve",
           "resilient_sparse_solve", "solve_stack_resilient",
           "report_to_json", "report_from_json", "merge_shard_report",
           "merge_telemetry",
           "TELEMETRY", "telemetry_snapshot", "reset_telemetry"]

#: Escalation stages, in order of increasing desperation.
STAGES = ("fast", "bitexact", "fresh", "regularized")

#: Modes of the per-member condition estimate.
_CONDITION_CHECKS = ("never", "escalated", "always")

#: Default relative diagonal shift of the ``regularized`` stage:
#: ``ε = √(machine eps) · max|A|`` perturbs each diagonal by one part in
#: ~10⁻⁸ of the largest entry — enough to factor a numerically singular
#: matrix, small enough that a merely ill-conditioned one still passes its
#: residual test against the original ``A``.
_DEFAULT_REGULARIZATION = float(np.sqrt(np.finfo(float).eps))

#: Process-wide resilience counters (reset with :func:`reset_telemetry`).
#: Stage keys count *accepted* solves per stage; ``recovered`` counts solves
#: accepted past the fast stage, ``quarantined`` exhausted chains,
#: ``degraded`` accepted solves whose condition estimate exceeded the limit.
TELEMETRY = {"fast": 0, "bitexact": 0, "fresh": 0, "regularized": 0,
             "recovered": 0, "quarantined": 0, "degraded": 0}


def telemetry_snapshot() -> dict:
    """A copy of the process-wide resilience counters."""
    return dict(TELEMETRY)


def reset_telemetry() -> None:
    """Zero the process-wide resilience counters."""
    for key in TELEMETRY:
        TELEMETRY[key] = 0


# --------------------------------------------------------------------------- #
# policy and diagnostics
# --------------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class SolvePolicy:
    """What the escalation chain is allowed to do and what it must achieve.

    Attributes
    ----------
    residual_limit:
        Largest acceptable scaled residual (see :func:`scaled_residual`).
        ``None`` reads :func:`repro.linalg.config.residual_limit`
        (``REPRO_RESIDUAL_LIMIT``-overridable).
    condition_limit:
        1-norm condition estimate above which an accepted solution is flagged
        *degraded*.  ``None`` reads
        :func:`repro.linalg.config.condition_limit`.
    refinement_steps:
        Rounds of iterative refinement attempted before a stage's residual is
        judged (each round keeps the refined iterate only when it improves
        the residual).
    regularization:
        Relative diagonal shift of the last-resort stage:
        ``ε = regularization · max|A|``.  ``None`` uses ``√(machine eps)``.
    allow_regularization:
        Gate the ``regularized`` stage entirely (``False`` quarantines after
        the exact-factorization stages).
    condition_check:
        ``"escalated"`` (default) estimates the condition number only for
        solves that left the fast path; ``"always"`` estimates it for every
        member (factoring the stack a second time on the LAPACK fast path);
        ``"never"`` skips the estimate.
    """

    residual_limit: Optional[float] = None
    condition_limit: Optional[float] = None
    refinement_steps: int = 1
    regularization: Optional[float] = None
    allow_regularization: bool = True
    condition_check: str = "escalated"

    def __post_init__(self):
        if self.condition_check not in _CONDITION_CHECKS:
            raise LinAlgError(
                f"unknown condition_check {self.condition_check!r} "
                f"(expected one of {_CONDITION_CHECKS})")
        if self.refinement_steps < 0:
            raise LinAlgError("refinement_steps must be non-negative")
        for name in ("residual_limit", "condition_limit", "regularization"):
            value = getattr(self, name)
            if value is not None and not (value > 0.0):
                raise LinAlgError(f"{name} must be positive (got {value!r})")

    def effective_residual_limit(self) -> float:
        """The residual limit, resolving ``None`` against the configuration."""
        if self.residual_limit is not None:
            return self.residual_limit
        return linalg_config.residual_limit()

    def effective_condition_limit(self) -> float:
        """The condition limit, resolving ``None`` against the configuration."""
        if self.condition_limit is not None:
            return self.condition_limit
        return linalg_config.condition_limit()

    def effective_regularization(self) -> float:
        """The relative diagonal shift of the ``regularized`` stage."""
        if self.regularization is not None:
            return self.regularization
        return _DEFAULT_REGULARIZATION


@dataclasses.dataclass(frozen=True)
class EscalationRecord:
    """One rejected stage: which stage gave up and why."""

    stage: str
    reason: str


@dataclasses.dataclass
class SolveDiagnostics:
    """Structured outcome of one resilient solve.

    Attributes
    ----------
    stage:
        The accepted escalation stage (one of :data:`STAGES`), or the last
        stage attempted when the chain was exhausted.
    residual:
        Scaled residual of the accepted solution (``inf`` on failure).
    condition:
        1-norm condition estimate of the accepted factorization (``None``
        when the policy skipped the estimate).
    refinements:
        Iterative-refinement rounds actually applied (improving rounds only).
    degraded:
        True when ``condition`` exceeded the policy's condition limit.
    escalations:
        :class:`EscalationRecord` per rejected stage, in order.
    """

    stage: str
    residual: float
    condition: Optional[float] = None
    refinements: int = 0
    degraded: bool = False
    escalations: Tuple[EscalationRecord, ...] = ()


@dataclasses.dataclass(frozen=True)
class FailureRecord:
    """One quarantined sweep point / ensemble sample."""

    index: int
    description: str
    reason: str
    escalations: Tuple[EscalationRecord, ...] = ()


@dataclasses.dataclass(frozen=True)
class RecoveryRecord:
    """One point / sample recovered past the fast stage."""

    index: int
    stage: str
    residual: float
    condition: Optional[float]
    escalations: Tuple[EscalationRecord, ...] = ()


class SweepReport:
    """Aggregated resilience outcome of one sweep / ensemble run.

    Attributes
    ----------
    label:
        Noun of the underlying system (``"matrix"``, ``"MNA matrix"``, …).
    kind:
        Granularity of the indices: ``"sweep point"`` or ``"sample"``.
    total:
        Number of points / samples attempted.
    failures:
        :class:`FailureRecord` per quarantined index.
    recoveries:
        :class:`RecoveryRecord` per index recovered past the fast stage.
    stage_counts:
        Accepted solves per escalation stage.
    degraded:
        ``(index, condition)`` pairs whose accepted solution exceeded the
        condition limit.
    """

    def __init__(self, label="matrix", kind="sweep point", total=0):
        self.label = label
        self.kind = kind
        self.total = total
        self.failures: List[FailureRecord] = []
        self.recoveries: List[RecoveryRecord] = []
        self.stage_counts = {stage: 0 for stage in STAGES}
        self.degraded: List[Tuple[int, float]] = []

    # -- recording ----------------------------------------------------------

    def record_fast(self, count=1):
        """Count ``count`` solves accepted on the fast path."""
        self.stage_counts["fast"] += int(count)
        TELEMETRY["fast"] += int(count)

    def record_recovery(self, index, diagnostics: SolveDiagnostics):
        """Record a solve accepted past the fast stage."""
        self.stage_counts[diagnostics.stage] += 1
        TELEMETRY[diagnostics.stage] += 1
        TELEMETRY["recovered"] += 1
        self.recoveries.append(RecoveryRecord(
            index=index, stage=diagnostics.stage,
            residual=diagnostics.residual, condition=diagnostics.condition,
            escalations=diagnostics.escalations))
        if diagnostics.degraded:
            self.record_degraded(index, diagnostics.condition)

    def record_degraded(self, index, condition):
        """Record an accepted solution whose condition estimate is over limit."""
        self.degraded.append((index, condition))
        TELEMETRY["degraded"] += 1

    def record_failure(self, index, description, reason, escalations=()):
        """Record a quarantined index."""
        self.failures.append(FailureRecord(
            index=index, description=description, reason=reason,
            escalations=tuple(escalations)))
        TELEMETRY["quarantined"] += 1

    def merge(self, other: "SweepReport") -> None:
        """Fold another report (e.g. one resumed shard) into this one."""
        self.total += other.total
        self.failures.extend(other.failures)
        self.recoveries.extend(other.recoveries)
        self.degraded.extend(other.degraded)
        for stage, count in other.stage_counts.items():
            self.stage_counts[stage] += count

    # -- queries ------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True when nothing was quarantined."""
        return not self.failures

    @property
    def quarantined(self) -> List[int]:
        """Sorted quarantined indices."""
        return sorted({record.index for record in self.failures})

    @property
    def recovered(self) -> List[int]:
        """Sorted indices recovered past the fast stage."""
        return sorted({record.index for record in self.recoveries})

    def summary(self) -> str:
        """One-line human summary."""
        parts = [f"{self.total} {self.kind}s"]
        escalated = sum(count for stage, count in self.stage_counts.items()
                        if stage != "fast")
        if escalated:
            parts.append(f"{escalated} escalated")
        if self.degraded:
            parts.append(f"{len(self.degraded)} degraded")
        parts.append(f"{len(self.quarantined)} quarantined")
        return f"{self.label}: " + ", ".join(parts)

    def __repr__(self):
        return (f"SweepReport(label={self.label!r}, kind={self.kind!r}, "
                f"total={self.total}, quarantined={self.quarantined})")


# --------------------------------------------------------------------------- #
# cross-process aggregation
# --------------------------------------------------------------------------- #
#
# Checkpointed and multiprocess runs evaluate shards whose SweepReports and
# telemetry counters live in another time (a resumed process) or another
# process (a worker).  These helpers move that state across the boundary:
# serialize / rebuild reports without touching the process-wide TELEMETRY,
# re-base shard-local indices into ensemble coordinates, and fold a worker's
# telemetry delta into the supervisor's counters exactly once.


def report_to_json(report) -> str:
    """Serialize a :class:`SweepReport`'s state (``""`` for ``None``)."""
    import json

    if report is None:
        return ""
    return json.dumps({
        "label": report.label,
        "kind": report.kind,
        "total": report.total,
        "failures": [
            {"index": record.index, "description": record.description,
             "reason": record.reason,
             "escalations": [[e.stage, e.reason]
                             for e in record.escalations]}
            for record in report.failures],
        "recoveries": [
            {"index": record.index, "stage": record.stage,
             "residual": record.residual, "condition": record.condition,
             "escalations": [[e.stage, e.reason]
                             for e in record.escalations]}
            for record in report.recoveries],
        "degraded": [[index, condition]
                     for index, condition in report.degraded],
        "stage_counts": report.stage_counts,
    })


def report_from_json(text):
    """Rebuild a :class:`SweepReport` without touching :data:`TELEMETRY`.

    The inverse of :func:`report_to_json` — used when resuming a checkpoint
    or receiving a worker's shard report, where the counters were already
    incremented by the process that did the solving.
    """
    import json

    if not text:
        return None
    state = json.loads(text)
    report = SweepReport(label=state["label"], kind=state["kind"],
                         total=state["total"])
    report.failures = [
        FailureRecord(index=entry["index"],
                      description=entry["description"],
                      reason=entry["reason"],
                      escalations=tuple(EscalationRecord(stage, reason)
                                        for stage, reason
                                        in entry["escalations"]))
        for entry in state["failures"]]
    report.recoveries = [
        RecoveryRecord(index=entry["index"], stage=entry["stage"],
                       residual=entry["residual"],
                       condition=entry["condition"],
                       escalations=tuple(EscalationRecord(stage, reason)
                                         for stage, reason
                                         in entry["escalations"]))
        for entry in state["recoveries"]]
    report.degraded = [(index, condition)
                       for index, condition in state["degraded"]]
    report.stage_counts = dict(state["stage_counts"])
    return report


def merge_shard_report(target, shard_report, offset) -> None:
    """Fold one shard's report into a run report, offsetting its indices.

    Unlike :meth:`SweepReport.merge` this re-bases the shard-local sample
    indices to ensemble coordinates — and copies records directly instead of
    going through the ``record_*`` methods, which would double-count the
    process-wide telemetry the shard run already incremented (in this
    process for sequential shards, in the worker for multiprocess ones).
    ``target.total`` is deliberately left to the caller: shards completing
    out of order make "samples attempted" a supervisor-level fact.
    """
    for record in shard_report.failures:
        target.failures.append(dataclasses.replace(
            record, index=record.index + offset))
    for record in shard_report.recoveries:
        target.recoveries.append(dataclasses.replace(
            record, index=record.index + offset))
    target.degraded.extend((index + offset, condition)
                           for index, condition in shard_report.degraded)
    for stage, count in shard_report.stage_counts.items():
        target.stage_counts[stage] += count


def merge_telemetry(delta) -> None:
    """Fold a worker process's telemetry delta into this process's counters.

    Workers snapshot :data:`TELEMETRY` around each shard and ship the
    difference with the shard result; the supervisor folds each completed
    shard's delta exactly once, so ``AnalysisSession.stats()["resilience"]``
    reflects the whole ensemble no matter how many processes solved it.
    Unknown keys (a newer worker) are ignored rather than invented.
    """
    for key, count in delta.items():
        if key in TELEMETRY:
            TELEMETRY[key] += int(count)


# --------------------------------------------------------------------------- #
# numerical diagnostics
# --------------------------------------------------------------------------- #


def _matrix_one_norm(matrix) -> float:
    """1-norm (max column sum of magnitudes) of a dense array or SparseMatrix."""
    if hasattr(matrix, "col_nnz"):  # SparseMatrix
        sums = np.zeros(matrix.n_cols)
        for __, col, value in matrix.entries():
            sums[col] += abs(value)
        return float(sums.max()) if matrix.n_cols else 0.0
    return float(np.abs(np.asarray(matrix)).sum(axis=0).max())


def _matvec(matrix, x):
    """``A x`` for a dense array or SparseMatrix."""
    if hasattr(matrix, "matvec"):
        return matrix.matvec(x)
    return np.asarray(matrix) @ x


def scaled_residual(matrix, x, b) -> float:
    """``‖Ax − b‖∞ / (‖A‖₁·‖x‖∞ + ‖b‖∞)`` — the stage-acceptance metric.

    Non-finite solutions score ``inf``; the zero-dimensional system scores 0.
    """
    x = np.asarray(x, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if x.size == 0:
        return 0.0
    if not np.all(np.isfinite(x)):
        return float("inf")
    residual = _matvec(matrix, x) - b
    numerator = float(np.abs(residual).max())
    denominator = (_matrix_one_norm(matrix) * float(np.abs(x).max())
                   + float(np.abs(b).max()))
    if denominator == 0.0:
        return 0.0 if numerator == 0.0 else float("inf")
    return numerator / denominator


def _absolute_matvec(matrix, magnitudes):
    """``|A|·|x|`` for a dense array or SparseMatrix."""
    if hasattr(matrix, "entries"):  # SparseMatrix
        result = np.zeros(matrix.n_rows)
        for row, col, value in matrix.entries():
            result[row] += abs(value) * magnitudes[col]
        return result
    return np.abs(np.asarray(matrix)) @ magnitudes


def consistency_residual(matrix, x, b) -> float:
    """Consistency measure of ``x`` against the *true* ``A`` — the
    regularized-stage gate.  Two prongs, the maximum of:

    * the **componentwise** (Oettli–Prager) residual
      ``max_i |Ax − b|_i / ((|A|·|x|)_i + |b_i|)``, with ``0/0 = 0``;
    * the **global** rhs-relative residual ``‖Ax − b‖∞ / ‖b‖∞``.

    The backward error of :func:`scaled_residual` scales with ``‖x‖∞``, so a
    solution of ``A + εI`` that blows up along a null-space direction of an
    exactly singular ``A`` can score an arbitrarily small backward error on
    an *inconsistent* system.  An earlier gate used only the global prong,
    but that is scaled by the *largest* right-hand-side entry: an
    inconsistent singular system driven by a small source (say 1e-6 A into a
    floating node, against a 1 V excitation elsewhere) scored 1e-6 and passed
    as "consistent".  The componentwise prong is scale-invariant row by row —
    each row's residual is judged against that row's own magnitude
    ``(|A|·|x|)_i + |b_i|`` (which always bounds ``|Ax − b|_i``, so the
    measure lives in ``[0, 1]``): a zero row against a nonzero entry scores
    exactly 1 no matter how small the drive, while a consistent zero row
    (zero entry) scores 0 and is legitimately rescuable.

    The global prong is still needed for the opposite failure shape: when
    the blown-up ``x`` feeds *nonzero* rows, ``(|A|·|x|)_i`` explodes with it
    and cancellation hides an O(‖b‖) inconsistency from the componentwise
    ratio (e.g. ``[[1, 1], [1, 1]] · x = [1, 0]``); there the residual
    stays comparable to ``b`` itself and the global prong rejects it.
    """
    x = np.asarray(x, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if x.size == 0:
        return 0.0
    if not np.all(np.isfinite(x)):
        return float("inf")
    numerator = np.abs(_matvec(matrix, x) - b)
    denominator = _absolute_matvec(matrix, np.abs(x)) + np.abs(b)
    # A zero denominator row forces a zero numerator (|(Ax)_i| ≤ (|A|·|x|)_i),
    # so 0/0 → 0 is the only degenerate case.
    safe = np.where(denominator == 0.0, 1.0, denominator)
    ratios = np.where(denominator == 0.0, 0.0, numerator / safe)
    componentwise = float(ratios.max())
    rhs_norm = float(np.abs(b).max())
    if rhs_norm == 0.0:
        return componentwise
    return max(componentwise, float(numerator.max()) / rhs_norm)


def _conjugate_transpose_solve(factorization: DenseLU, rhs) -> np.ndarray:
    """Solve ``Aᴴ x = b`` from the packed factors ``A = Pᵀ L U``.

    ``Aᴴ = Uᴴ Lᴴ P``, so: forward-substitute the lower triangle ``Uᴴ``,
    back-substitute the unit upper triangle ``Lᴴ``, then undo the row
    permutation (``x[p] = w``).
    """
    lu = factorization.lu
    n = factorization.n
    work = np.asarray(rhs, dtype=complex).copy()
    for i in range(n):
        work[i] -= np.dot(np.conj(lu[:i, i]), work[:i])
        pivot = np.conj(lu[i, i])
        if pivot == 0:
            raise SingularMatrixError(
                "zero pivot in conjugate-transpose substitution",
                pivot_index=i, dimension=n)
        work[i] /= pivot
    for i in range(n - 1, -1, -1):
        work[i] -= np.dot(np.conj(lu[i + 1:, i]), work[i + 1:])
    solution = np.empty(n, dtype=complex)
    solution[factorization.permutation] = work
    return solution


def dense_condition_estimate(factorization: DenseLU, anorm) -> float:
    """Hager's 1-norm condition estimate ``‖A‖₁·est(‖A⁻¹‖₁)`` from packed LU.

    The classic power iteration on ``|A⁻¹|``: alternate solves with ``A`` and
    ``Aᴴ``, steering toward the column of ``A⁻¹`` with the largest 1-norm.
    A lower bound of the true condition number (usually within a small
    factor); singular factors estimate ``inf``.
    """
    n = factorization.n
    if n == 0:
        return 0.0
    anorm = float(anorm)
    if anorm == 0.0:
        return float("inf")
    x = np.full(n, 1.0 / n, dtype=complex)
    estimate = 0.0
    try:
        for __ in range(5):
            y = factorization.solve(x)
            if not np.all(np.isfinite(y)):
                return float("inf")
            new_estimate = float(np.abs(y).sum())
            if new_estimate <= estimate:
                break
            estimate = new_estimate
            magnitude = np.abs(y)
            signs = np.where(magnitude == 0.0, 1.0 + 0.0j, y
                             / np.where(magnitude == 0.0, 1.0, magnitude))
            z = _conjugate_transpose_solve(factorization, signs)
            j = int(np.argmax(np.abs(z)))
            if float(np.abs(z[j])) <= float(np.real(np.vdot(z, x))):
                break
            x = np.zeros(n, dtype=complex)
            x[j] = 1.0
    except SingularMatrixError:
        return float("inf")
    return anorm * estimate


def sparse_condition_estimate(factorization, matrix) -> float:
    """Probe-based 1-norm condition lower bound for a sparse factorization.

    The sparse :class:`~repro.linalg.lu.LUFactorization` exposes no
    conjugate-transpose solve, so ``‖A⁻¹‖₁`` is bounded from below by pushing
    a few structured probes (uniform, alternating-sign) through ``A⁻¹`` and
    taking the largest amplification ``‖A⁻¹p‖₁ / ‖p‖₁``.
    """
    n = factorization.n
    if n == 0:
        return 0.0
    anorm = _matrix_one_norm(matrix)
    if anorm == 0.0:
        return float("inf")
    probes = [np.full(n, 1.0 / n, dtype=complex),
              np.array([(-1.0) ** i for i in range(n)], dtype=complex) / n]
    best = 0.0
    try:
        for probe in probes:
            solution = factorization.solve(probe)
            if not np.all(np.isfinite(solution)):
                return float("inf")
            amplification = (float(np.abs(solution).sum())
                             / float(np.abs(probe).sum()))
            best = max(best, amplification)
    except SingularMatrixError:
        return float("inf")
    return anorm * best


def _refine(factorization, matrix, x, b, steps, limit):
    """Rescue-only iterative refinement: ``x += F⁻¹(b − Ax)`` while failing.

    Refinement runs only while the scaled residual is *above* ``limit`` — an
    already-acceptable solution is returned untouched, so fast-path results
    keep their exact bits.  ``factorization`` may be of a *regularized*
    neighbour of ``matrix``: the residual is always measured against the
    original system, so a shifted factorization either converges toward the
    true solution or the stage is rejected honestly.
    Returns ``(x, residual, rounds_applied)``.
    """
    residual = scaled_residual(matrix, x, b)
    applied = 0
    for __ in range(steps):
        if residual <= limit or not np.isfinite(residual):
            break
        defect = b - _matvec(matrix, x)
        try:
            correction = factorization.solve(defect)
        except SingularMatrixError:
            break
        candidate = x + correction
        candidate_residual = scaled_residual(matrix, candidate, b)
        if candidate_residual < residual:
            x, residual = candidate, candidate_residual
            applied += 1
        else:
            break
    return x, residual, applied


# --------------------------------------------------------------------------- #
# escalating solves
# --------------------------------------------------------------------------- #


def _finish(matrix, factorization, x, b, policy, stage, escalations,
            estimate):
    """Refine, judge and package one candidate stage's solution.

    Returns ``(accepted, x, SolveDiagnostics)``; on rejection the diagnostics
    carry the stage's residual for the escalation record.
    """
    limit = policy.effective_residual_limit()
    x, residual, applied = _refine(factorization, matrix, x, b,
                                   policy.refinement_steps, limit)
    rejected = residual > limit
    if not rejected and stage == "regularized":
        # The shifted factorization did not see the true A: additionally
        # demand componentwise consistency, which the ‖x‖-scaled backward
        # error cannot certify when x blows up along a null-space direction
        # (exactly singular, inconsistent systems) — and which, unlike an
        # ‖b‖∞-relative test, cannot be fooled by a small drive magnitude.
        consistency = consistency_residual(matrix, x, b)
        rejected = consistency > float(np.sqrt(limit))
        if rejected:
            residual = max(residual, consistency)
    if rejected:
        return False, x, SolveDiagnostics(
            stage=stage, residual=residual, refinements=applied,
            escalations=tuple(escalations))
    condition = None
    degraded = False
    check = policy.condition_check
    if check == "always" or (check == "escalated"
                             and (stage != "fast" or escalations)):
        condition = estimate(factorization)
        degraded = condition > policy.effective_condition_limit()
    return True, x, SolveDiagnostics(
        stage=stage, residual=residual, condition=condition,
        refinements=applied, degraded=degraded,
        escalations=tuple(escalations))


def resilient_dense_solve(matrix, rhs, policy=None, escalations=()):
    """Escalating scalar solve of one dense system ``A x = b``.

    The chain past the fast stage: ``bitexact`` (scalar
    :func:`~repro.linalg.dense.dense_lu`, the reference kernel whose factors
    are the batched kernel's bit-for-bit) then ``regularized``
    (``A + εI``, validated against the original ``A``).  Callers that already
    burned the fast stage pass its :class:`EscalationRecord` in
    ``escalations``.

    Returns ``(x, SolveDiagnostics)``; raises :class:`SolveFailureError`
    when every stage is rejected.
    """
    policy = policy or SolvePolicy()
    matrix = np.asarray(matrix, dtype=complex)
    rhs = np.asarray(rhs, dtype=complex)
    escalations = list(escalations)
    if not (np.all(np.isfinite(matrix)) and np.all(np.isfinite(rhs))):
        raise SolveFailureError(
            "system contains non-finite entries; unrecoverable",
            dimension=matrix.shape[0], stage="fast",
            diagnostics=SolveDiagnostics(
                stage="fast", residual=float("inf"),
                escalations=tuple(escalations)))
    anorm = _matrix_one_norm(matrix)

    def estimate(factorization):
        return dense_condition_estimate(factorization, anorm)

    # Stage: bitexact (fresh partial-pivoting scalar factorization).
    try:
        factorization = dense_lu(matrix)
        x = factorization.solve(rhs)
    except SingularMatrixError as error:
        escalations.append(EscalationRecord("bitexact", str(error)))
    else:
        accepted, x, diagnostics = _finish(
            matrix, factorization, x, rhs, policy, "bitexact", escalations,
            estimate)
        if accepted:
            return x, diagnostics
        escalations.append(EscalationRecord(
            "bitexact", f"residual {diagnostics.residual:.3e} above limit "
            f"{policy.effective_residual_limit():.3e}"))

    # Stage: regularized (factor A + εI, validate against A itself).
    if policy.allow_regularization:
        shift = policy.effective_regularization() * max(anorm, 1.0)
        shifted = matrix + shift * np.eye(matrix.shape[0], dtype=complex)
        try:
            factorization = dense_lu(shifted)
            x = factorization.solve(rhs)
        except SingularMatrixError as error:
            escalations.append(EscalationRecord("regularized", str(error)))
        else:
            accepted, x, diagnostics = _finish(
                matrix, factorization, x, rhs, policy, "regularized",
                escalations, estimate)
            if accepted:
                return x, diagnostics
            escalations.append(EscalationRecord(
                "regularized",
                f"residual {diagnostics.residual:.3e} above limit "
                f"{policy.effective_residual_limit():.3e}"))

    raise SolveFailureError(
        "escalation chain exhausted without an acceptable solution",
        dimension=matrix.shape[0], stage="regularized",
        diagnostics=SolveDiagnostics(
            stage="regularized", residual=float("inf"),
            escalations=tuple(escalations)))


def resilient_sparse_solve(matrix, rhs, policy=None, pattern=None,
                           column_order=None):
    """Escalating solve of one sparse system, pattern-reuse aware.

    The full chain: ``fast`` (pivot-pattern refactorization via
    :func:`~repro.linalg.lu.sparse_lu_reusing`) → ``bitexact`` (fresh ordered
    factorization — recorded explicitly here, where the legacy path fell back
    silently) → ``fresh`` (full Markowitz pivot search, abandoning the
    fill-reducing order) → ``regularized`` (``A + εI`` validated against the
    original ``A``).

    Returns ``(x, SolveDiagnostics, pattern)`` where ``pattern`` is the pivot
    pattern to reuse for the next point — the incoming one when the reuse
    succeeded, the fresh factorization when one was computed, and the
    incoming one unchanged after a regularized solve (a shifted pivot order
    must not poison subsequent points).  Raises :class:`SolveFailureError`
    when every stage is rejected.
    """
    policy = policy or SolvePolicy()
    rhs = np.asarray(rhs, dtype=complex)
    escalations: List[EscalationRecord] = []
    values = np.array([value for __, __, value in matrix.entries()],
                      dtype=complex)
    if not (np.all(np.isfinite(values)) and np.all(np.isfinite(rhs))):
        raise SolveFailureError(
            "system contains non-finite entries; unrecoverable",
            dimension=matrix.n_rows, stage="fast",
            diagnostics=SolveDiagnostics(
                stage="fast", residual=float("inf")))

    def estimate(factorization):
        return sparse_condition_estimate(factorization, matrix)

    # Stages: fast (pattern reuse) / bitexact (fresh ordered).
    factorization = None
    next_pattern = pattern
    stage = "fast"
    try:
        factorization, next_pattern, refactored = sparse_lu_reusing(
            matrix, pattern, column_order=column_order)
        if pattern is not None and not refactored:
            # The silent legacy fallback, made visible.
            escalations.append(EscalationRecord(
                "fast", "reused pivot order rejected; "
                "fresh ordered factorization"))
            stage = "bitexact"
    except SingularMatrixError as error:
        escalations.append(EscalationRecord(stage, str(error)))
        factorization = None
    if factorization is not None:
        try:
            x = factorization.solve(rhs)
        except SingularMatrixError as error:
            escalations.append(EscalationRecord(stage, str(error)))
        else:
            accepted, x, diagnostics = _finish(
                matrix, factorization, x, rhs, policy, stage, escalations,
                estimate)
            if accepted:
                return x, diagnostics, next_pattern
            escalations.append(EscalationRecord(
                stage, f"residual {diagnostics.residual:.3e} above limit "
                f"{policy.effective_residual_limit():.3e}"))

    # Stage: fresh (full Markowitz search; skip when it would repeat the
    # factorization that just failed — no order, no reusable pattern).
    if column_order is not None or pattern is not None:
        try:
            factorization = sparse_lu(matrix)
            x = factorization.solve(rhs)
        except SingularMatrixError as error:
            escalations.append(EscalationRecord("fresh", str(error)))
        else:
            accepted, x, diagnostics = _finish(
                matrix, factorization, x, rhs, policy, "fresh", escalations,
                estimate)
            if accepted:
                return x, diagnostics, factorization
            escalations.append(EscalationRecord(
                "fresh", f"residual {diagnostics.residual:.3e} above limit "
                f"{policy.effective_residual_limit():.3e}"))

    # Stage: regularized (factor A + εI, validate against A itself).
    if policy.allow_regularization:
        anorm = _matrix_one_norm(matrix)
        shift = policy.effective_regularization() * max(anorm, 1.0)
        shifted = matrix.diagonally_shifted(shift)
        try:
            factorization = sparse_lu(shifted)
            x = factorization.solve(rhs)
        except SingularMatrixError as error:
            escalations.append(EscalationRecord("regularized", str(error)))
        else:
            accepted, x, diagnostics = _finish(
                matrix, factorization, x, rhs, policy, "regularized",
                escalations, estimate)
            if accepted:
                return x, diagnostics, next_pattern
            escalations.append(EscalationRecord(
                "regularized",
                f"residual {diagnostics.residual:.3e} above limit "
                f"{policy.effective_residual_limit():.3e}"))

    raise SolveFailureError(
        "escalation chain exhausted without an acceptable solution",
        dimension=matrix.n_rows, stage="regularized",
        diagnostics=SolveDiagnostics(
            stage="regularized", residual=float("inf"),
            escalations=tuple(escalations)))


# --------------------------------------------------------------------------- #
# batched front end
# --------------------------------------------------------------------------- #


def _stack_residuals(stack, solutions, rhs_stack) -> np.ndarray:
    """Vectorized :func:`scaled_residual` over a ``(B, n, n)`` stack."""
    residual = np.einsum("bij,bj->bi", stack, solutions) - rhs_stack
    numerator = np.abs(residual).max(axis=1)
    anorm = np.abs(stack).sum(axis=1).max(axis=1)
    denominator = (anorm * np.abs(solutions).max(axis=1)
                   + np.abs(rhs_stack).max(axis=1))
    with np.errstate(invalid="ignore", divide="ignore"):
        scaled = np.where(denominator == 0.0,
                          np.where(numerator == 0.0, 0.0, np.inf),
                          numerator / denominator)
    scaled = np.where(np.isnan(scaled), np.inf, scaled)
    return scaled


def solve_stack_resilient(stack, rhs, policy, report, indexer,
                          solver="lu") -> np.ndarray:
    """Solve a ``(B, n, n)`` stack, escalating failing members individually.

    The fast stage is the stack's native batched kernel
    (:func:`~repro.linalg.dense.batched_dense_lu` for ``solver="lu"``,
    :func:`~repro.linalg.dense.batched_solve` for ``"lapack"``); members it
    cannot serve — singular flags, non-finite rows, residuals over the
    policy limit — are re-solved one by one through
    :func:`resilient_dense_solve`.  Both batched kernels are batch-size
    invariant, so surviving members keep exactly the bits a fault-free run
    would have produced.

    Parameters
    ----------
    stack, rhs:
        The systems; ``rhs`` is one shared vector or a ``(B, n)`` stack.
    policy:
        The :class:`SolvePolicy`.
    report:
        The :class:`SweepReport` receiving per-member outcomes.
    indexer:
        ``indexer(member) -> (report_index, description)`` mapping a stack
        position to the index recorded in the report (sweep point or sample)
        and a human-readable description of the member.
    solver:
        ``"lu"`` or ``"lapack"``.

    Returns
    -------
    numpy.ndarray
        ``(B, n)`` solutions; quarantined members' rows are NaN.
    """
    stack = np.asarray(stack, dtype=complex)
    batch, n = stack.shape[0], stack.shape[1]
    rhs = np.asarray(rhs, dtype=complex)
    rhs_stack = (np.broadcast_to(rhs, (batch, n)) if rhs.ndim == 1 else rhs)
    limit = policy.effective_residual_limit()

    singular = np.zeros(batch, dtype=bool)
    factorization = None
    if solver == "lapack":
        # A non-finite member is legal input here (it will be quarantined);
        # keep its NaN arithmetic from warning inside the batched kernel.
        with np.errstate(invalid="ignore"):
            try:
                solutions = batched_solve(stack, rhs)
            except SingularMatrixError:
                # Re-solve members one by one: zgesv results are batch-size
                # invariant, so healthy members reproduce the fault-free
                # bits.
                solutions = np.full((batch, n), np.nan, dtype=complex)
                for member in range(batch):
                    try:
                        solutions[member] = batched_solve(
                            stack[member:member + 1], rhs_stack[member])[0]
                    except SingularMatrixError:
                        singular[member] = True
    else:
        # A non-finite member is legal input here (it will be quarantined);
        # keep its NaN arithmetic from warning inside the batched kernel.
        with np.errstate(invalid="ignore"):
            factorization = batched_dense_lu(stack, overwrite=False)
            solutions = factorization.solve(rhs)
        singular = factorization.singular.copy()

    finite = np.all(np.isfinite(solutions), axis=1)
    with np.errstate(invalid="ignore"):
        residuals = _stack_residuals(stack, np.where(finite[:, None],
                                                     solutions, 0.0),
                                     rhs_stack)
    failing = singular | ~finite | (residuals > limit)
    report.record_fast(int(batch - failing.sum()))

    if policy.condition_check == "always":
        if factorization is None:
            factorization = batched_dense_lu(stack, overwrite=False)
        for member in np.flatnonzero(~failing):
            anorm = float(np.abs(stack[member]).sum(axis=0).max())
            condition = dense_condition_estimate(
                factorization.member(member), anorm)
            if condition > policy.effective_condition_limit():
                index, __ = indexer(int(member))
                report.record_degraded(index, condition)

    for member in np.flatnonzero(failing):
        member = int(member)
        index, description = indexer(member)
        if singular[member]:
            reason = "fast batched factorization flagged the matrix singular"
        elif not finite[member]:
            reason = "fast batched solution is non-finite"
        else:
            reason = (f"fast batched residual {residuals[member]:.3e} "
                      f"above limit {limit:.3e}")
        fast_record = EscalationRecord("fast", reason)
        try:
            x, diagnostics = resilient_dense_solve(
                stack[member], rhs_stack[member], policy,
                escalations=(fast_record,))
        except SolveFailureError as error:
            solutions[member] = np.nan
            diagnostics = error.diagnostics
            report.record_failure(
                index, description, str(error),
                diagnostics.escalations if diagnostics is not None
                else (fast_record,))
        else:
            solutions[member] = x
            report.record_recovery(index, diagnostics)
    return solutions
