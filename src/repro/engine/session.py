"""Circuit-keyed analysis session: build once, reuse everywhere.

A chained workload — Bode verification, then sensitivity screening, then SBG
reduction, then interpolation — touches the *same* circuit four times, and
before this module each stage rebuilt its formulation and refactored its
frequency sweep from scratch.  :class:`AnalysisSession` memoizes those
artifacts behind a **content hash** of the circuit (plus the transfer spec /
sweep grid where relevant), so any stage that asks for something an earlier
stage already built gets the cached object back:

* assembled :class:`~repro.mna.builder.MnaSystem` /
  :class:`~repro.nodal.admittance.NodalFormulation` instances,
* kept sweep factorizations (:class:`~repro.mna.solve.SweepFactorization`),
  the expensive part of every AC / screening pass,
* :class:`~repro.nodal.sampler.NetworkFunctionSampler` instances (which carry
  their own batch engine and pivot pattern),
* full :class:`~repro.interpolation.reference.NumericalReference` results,
* symbolic artifacts: :class:`~repro.symbolic.matrix.SymbolicNodal`
  matrices, :class:`~repro.symbolic.kernel.DeterminantEngine` instances
  (with their minor memos) and finished
  :class:`~repro.symbolic.generation.SymbolicTransferFunction` results.

Keying by content rather than identity means a circuit rebuilt from the same
netlist, or a ``circuit.copy()``, still hits the cache — and any mutation
(element removed, value scaled) changes the hash and misses, so stale answers
are structurally impossible.  The session holds strong references to
everything it caches; use :meth:`AnalysisSession.invalidate` to drop a
circuit's artifacts (or everything) when memory matters.

All imports of the concrete builders happen lazily inside methods — the
session sits *above* :mod:`repro.mna` / :mod:`repro.nodal` /
:mod:`repro.interpolation` in the layer diagram, while this package's
formulation/sweep modules sit below them.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["AnalysisSession"]

#: Kept sweep factorizations are the one cache kind whose entries are large
#: (per-point LU factors for a whole grid), so only the most recent grids are
#: retained — bounded both by count and by estimated retained bytes; all
#: other kinds are unbounded until :meth:`AnalysisSession.invalidate`.
_MAX_SWEEP_ENTRIES = 16

#: Estimated retained-factor budget across all cached sweeps (~256 MB).  A
#: sweep's factors cost about ``num_points · n² · 16`` bytes on the dense
#: path; sparse sweeps are costed by their actual stored entries — pricing
#: them at n² would evict every sweep of a post-layout-scale network even
#: though ordered sparse factors stay near ``nnz + fill`` per point.
_MAX_SWEEP_BYTES = 256 * 1024 * 1024

#: Compiled transfer models carry dense (groups × free-symbols) incidence
#: programs — small next to sweep factors but not free (the µA741 macro's
#: is a few hundred KB) — so the compiled cache is LRU-bounded by count
#: like the kept-sweep cache.
_MAX_COMPILED_ENTRIES = 16


def _sweep_cost_bytes(sweep) -> int:
    """Pessimistic estimate of one kept sweep's factor memory."""
    if sweep.is_dense:
        return sweep.num_points * sweep.dimension * sweep.dimension * 16
    entries = 0
    for factorization in sweep.factors:
        entries += sum(len(row) for row in factorization.upper_rows)
        entries += sum(len(step) for step in factorization.eliminations)
    # Complex value plus dict/index bookkeeping per stored entry.
    return entries * 24


class AnalysisSession:
    """Memoized formulations, sweep factorizations and references.

    Attributes
    ----------
    hits, misses:
        Aggregate cache statistics across every artifact kind.
    """

    def __init__(self):
        self._mna: Dict[str, object] = {}
        self._nodal: Dict[Tuple, object] = {}
        self._samplers: Dict[Tuple, object] = {}
        self._sweeps: Dict[Tuple, object] = {}
        self._references: Dict[Tuple, object] = {}
        self._admittance: Dict[Tuple, object] = {}
        self._screenings: Dict[Tuple, object] = {}
        self._symbolic_nodal: Dict[Tuple, object] = {}
        self._symbolic_engines: Dict[Tuple, object] = {}
        self._symbolic_transfers: Dict[Tuple, object] = {}
        self._compiled: Dict[Tuple, object] = {}
        self._montecarlo: Dict[Tuple, object] = {}
        self.hits = 0
        self.misses = 0
        self._compiled_stats = {"compiles": 0, "hits": 0, "evictions": 0}

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #

    @staticmethod
    def fingerprint(circuit) -> str:
        """Content hash of a circuit: its ordered elements and node registry.

        Element order matters (it fixes the unknown ordering of both
        formulations), and so does the declared node list — a circuit can
        carry dangling nodes its elements no longer touch (e.g. after
        ``with_element_removed``), and those change the system dimension.
        The circuit's display name does not participate, so copies and
        re-parsed netlists with identical content share a fingerprint.
        """
        digest = hashlib.sha256()
        for element in circuit:
            digest.update(repr(element).encode("utf-8"))
            digest.update(b"\n")
        digest.update(b"\x00nodes\x00")
        for node in circuit.nodes:
            digest.update(node.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    @staticmethod
    def _spec_key(spec):
        """Hashable key for a TransferSpec / output node / node pair."""
        inputs = getattr(spec, "inputs", None)
        if inputs is not None:
            output = getattr(spec, "output")
            if isinstance(output, (tuple, list)):
                output = tuple(str(node) for node in output)
            else:
                output = str(output)
            return ("spec", tuple(str(name) for name in inputs), output)
        if isinstance(spec, (tuple, list)):
            return ("output", tuple(str(node) for node in spec))
        return ("output", str(spec))

    @staticmethod
    def _grid_key(s_values) -> bytes:
        return np.asarray(list(s_values), dtype=complex).tobytes()

    def _get(self, cache, key, build):
        if key in cache:
            self.hits += 1
            return cache[key]
        self.misses += 1
        cache[key] = value = build()
        return value

    # ------------------------------------------------------------------ #
    # cached artifacts
    # ------------------------------------------------------------------ #

    def mna_system(self, circuit, fingerprint=None):
        """The circuit's assembled :class:`~repro.mna.builder.MnaSystem`.

        ``fingerprint`` lets callers that captured the hash earlier (e.g. at
        snapshot time) skip recomputing it.
        """
        from ..mna.builder import build_mna_system

        if fingerprint is None:
            fingerprint = self.fingerprint(circuit)
        return self._get(self._mna, fingerprint,
                         lambda: build_mna_system(circuit))

    def factored_sweep(self, circuit, s_values, method="auto", *,
                       system=None, fingerprint=None):
        """Kept LU factors of the circuit's MNA system over a sweep grid.

        This is :func:`repro.mna.solve.ac_factor_sweep` behind a
        ``(circuit, grid, method)`` key — the dominant cost of AC analysis
        and rank-1 screening, paid once per distinct grid.  Only the
        ``_MAX_SWEEP_ENTRIES`` most recently built grids are retained (these
        entries hold per-point factors, the session's only large artifacts).

        Callers holding a *snapshot* — a system assembled before possible
        in-place mutations of ``circuit`` (as :class:`~repro.analysis.ac.ACAnalysis`
        does) — pass ``system`` plus the ``fingerprint`` captured when the
        snapshot was taken, so the factors always match the snapshot rather
        than the circuit's current content.
        """
        from ..mna.solve import SweepFactorization

        if fingerprint is None:
            fingerprint = self.fingerprint(circuit)
        if system is None:
            system = self.mna_system(circuit, fingerprint=fingerprint)
        # Materialize once: the grid is consumed twice (key + construction),
        # so a generator argument must not be drained by the key computation.
        s = np.asarray(list(s_values), dtype=complex)
        key = (fingerprint, s.tobytes(), method)
        sweep = self._get(self._sweeps, key,
                          lambda: SweepFactorization(system, s,
                                                     method=method))
        # LRU bookkeeping: refresh the entry's position, drop the oldest
        # grids beyond the count and estimated-memory retention bounds
        # (never the entry just requested).
        self._sweeps.pop(key)
        self._sweeps[key] = sweep
        while len(self._sweeps) > 1 and (
                len(self._sweeps) > _MAX_SWEEP_ENTRIES
                or sum(map(_sweep_cost_bytes, self._sweeps.values()))
                > _MAX_SWEEP_BYTES):
            del self._sweeps[next(iter(self._sweeps))]
        return sweep

    def admittance_circuit(self, circuit, merge_parallel=False):
        """The circuit transformed to admittance form (gyrator-C inductors)."""
        from ..netlist.transform import to_admittance_form

        key = (self.fingerprint(circuit), merge_parallel)
        return self._get(self._admittance, key,
                         lambda: to_admittance_form(
                             circuit, merge_parallel=merge_parallel))

    def nodal_formulation(self, circuit, spec):
        """The admittance-form circuit's
        :class:`~repro.nodal.admittance.NodalFormulation` for ``spec``."""
        from ..nodal.admittance import build_nodal_formulation

        key = (self.fingerprint(circuit), self._spec_key(spec))
        return self._get(self._nodal, key,
                         lambda: build_nodal_formulation(circuit, spec))

    def sampler(self, circuit, spec, method="auto"):
        """A :class:`~repro.nodal.sampler.NetworkFunctionSampler` over the
        cached nodal formulation (``circuit`` must be in admittance form)."""
        from ..nodal.sampler import NetworkFunctionSampler

        formulation = self.nodal_formulation(circuit, spec)
        key = (self.fingerprint(circuit), self._spec_key(spec), method)
        return self._get(self._samplers, key,
                         lambda: NetworkFunctionSampler(circuit, formulation,
                                                        method=method))

    def reference(self, circuit, spec, options=None, method="auto",
                  admittance_transform=True, merge_parallel=False):
        """The circuit's :class:`~repro.interpolation.reference.NumericalReference`.

        Equivalent to :func:`repro.interpolation.reference.generate_reference`
        (including the admittance transform, itself cached), memoized on
        circuit content, spec, options and backend — SBG error control and
        any later interpolation stage share one generation run.
        """
        from ..interpolation.reference import generate_reference

        key = (self.fingerprint(circuit), self._spec_key(spec),
               repr(options), method, admittance_transform, merge_parallel)

        def build():
            if admittance_transform:
                target = self.admittance_circuit(
                    circuit, merge_parallel=merge_parallel)
            else:
                target = circuit
            return generate_reference(target, spec, options=options,
                                      method=method,
                                      admittance_transform=False)

        return self._get(self._references, key, build)

    def screening(self, circuit, output, frequencies, elements=None,
                  perturbation=0.01, method="rank1"):
        """The circuit's element :class:`~repro.analysis.sensitivity.ScreeningResult`.

        Screening is a pure function of circuit content, output, grid and
        parameters, so the whole result is memoized — an SBG pass that ranks
        the same elements a dashboard already screened reuses the answer
        outright, and the underlying baseline factorization is shared with
        Bode passes through :meth:`factored_sweep` either way.
        ``screen_elements(..., session=...)`` delegates here, so every
        consumer gets the memoized result.
        """
        from ..analysis.sensitivity import _screen

        frequencies = np.asarray(list(frequencies), dtype=float)
        elements_key = (None if elements is None
                        else tuple(str(name) for name in elements))
        fingerprint = self.fingerprint(circuit)
        key = (fingerprint, self._spec_key(output),
               self._grid_key(frequencies), elements_key,
               float(perturbation), method)
        return self._get(
            self._screenings, key,
            lambda: _screen(circuit, output, frequencies, elements,
                            perturbation, method, session=self,
                            fingerprint=fingerprint))

    # ------------------------------------------------------------------ #
    # symbolic artifacts
    # ------------------------------------------------------------------ #

    def symbolic_nodal(self, circuit, spec, admittance_transform=True):
        """The circuit's :class:`~repro.symbolic.matrix.SymbolicNodal`.

        Built over the cached admittance-form circuit (shared with
        :meth:`reference`), keyed by the *original* circuit's fingerprint.
        """
        from ..symbolic.matrix import build_symbolic_nodal

        key = (self.fingerprint(circuit), self._spec_key(spec),
               admittance_transform)

        def build():
            target = (self.admittance_circuit(circuit)
                      if admittance_transform else circuit)
            return build_symbolic_nodal(target, spec)

        return self._get(self._symbolic_nodal, key, build)

    def symbolic_engine(self, circuit, spec, max_terms=None,
                        admittance_transform=True):
        """The circuit's :class:`~repro.symbolic.kernel.DeterminantEngine`
        (plus its excitation-column id) over the cached symbolic nodal matrix.

        The engine carries the minor memo, so a determinant request and a
        later transfer-function request — or repeated requests from SDG/SAG
        stages — expand each structural minor exactly once per session.
        """
        from ..symbolic.determinant import DEFAULT_MAX_TERMS

        if max_terms is None:
            max_terms = DEFAULT_MAX_TERMS
        nodal = self.symbolic_nodal(circuit, spec,
                                    admittance_transform=admittance_transform)
        key = (self.fingerprint(circuit), self._spec_key(spec),
               admittance_transform, int(max_terms))
        return self._get(self._symbolic_engines, key,
                         lambda: nodal.determinant_engine(max_terms=max_terms))

    def symbolic_determinant(self, circuit, spec, max_terms=None,
                             admittance_transform=True):
        """The symbolic nodal determinant ``D(s, x)`` of the circuit.

        Expanded on the cached engine — a later
        :meth:`symbolic_transfer` call reuses every minor this expansion
        memoized.
        """
        from ..symbolic.determinant import DEFAULT_MAX_TERMS

        if max_terms is None:
            max_terms = DEFAULT_MAX_TERMS
        # Lives in the transfer cache with a reserved kernel-slot marker
        # (fingerprint stays key[0] so invalidate() matches it).
        key = (self.fingerprint(circuit), self._spec_key(spec),
               admittance_transform, int(max_terms), "determinant-only")

        def build():
            engine, __ = self.symbolic_engine(
                circuit, spec, max_terms=max_terms,
                admittance_transform=admittance_transform)
            indices = tuple(range(self.symbolic_nodal(
                circuit, spec,
                admittance_transform=admittance_transform).dimension))
            return engine.to_expression(
                engine.determinant_terms(indices, indices))

        return self._get(self._symbolic_transfers, key, build)

    def symbolic_transfer(self, circuit, spec, max_terms=None,
                          kernel="interned", admittance_transform=True):
        """The circuit's full
        :class:`~repro.symbolic.generation.SymbolicTransferFunction`, cached
        by content (``symbolic_network_function(..., session=...)`` lands
        here)."""
        from ..symbolic.determinant import DEFAULT_MAX_TERMS
        from ..symbolic.generation import _transfer_from_nodal

        if max_terms is None:
            max_terms = DEFAULT_MAX_TERMS
        key = (self.fingerprint(circuit), self._spec_key(spec),
               admittance_transform, int(max_terms), kernel)

        def build():
            nodal = self.symbolic_nodal(
                circuit, spec, admittance_transform=admittance_transform)
            if kernel == "legacy":
                return _transfer_from_nodal(nodal, spec, max_terms=max_terms,
                                            kernel="legacy")
            engine, excitation = self.symbolic_engine(
                circuit, spec, max_terms=max_terms,
                admittance_transform=admittance_transform)
            return _transfer_from_nodal(nodal, spec, max_terms=max_terms,
                                        kernel=kernel, engine=engine,
                                        excitation=excitation)

        return self._get(self._symbolic_transfers, key, build)

    def compiled_transfer(self, circuit, spec, free_symbols=None,
                          max_terms=None, kernel="interned",
                          admittance_transform=True):
        """The circuit's :class:`~repro.symbolic.compile.CompiledTransferModel`.

        Compile-once semantics per (circuit fingerprint, spec, free-symbol
        set): Bode passes, SDG epsilon sweeps and Monte Carlo runs on one
        circuit all serve from the same lowered coefficient-tensor program.
        The cache is LRU-bounded like the kept-sweep cache, and the
        per-session ``compiles`` / ``hits`` / ``evictions`` counters are
        reported by :meth:`stats` under ``"compiled"``.
        """
        from ..symbolic.determinant import DEFAULT_MAX_TERMS

        if max_terms is None:
            max_terms = DEFAULT_MAX_TERMS
        free_key = None if free_symbols is None else \
            tuple(str(name) for name in free_symbols)
        key = (self.fingerprint(circuit), self._spec_key(spec),
               admittance_transform, int(max_terms), kernel, free_key)
        model = self._compiled.get(key)
        if model is None:
            self.misses += 1
            self._compiled_stats["compiles"] += 1
            transfer = self.symbolic_transfer(
                circuit, spec, max_terms=max_terms, kernel=kernel,
                admittance_transform=admittance_transform)
            model = transfer.compile(free_symbols=free_key)
            self._compiled[key] = model
        else:
            self.hits += 1
            self._compiled_stats["hits"] += 1
            # Refresh recency so hot programs survive the LRU bound.
            self._compiled.pop(key)
            self._compiled[key] = model
        while len(self._compiled) > _MAX_COMPILED_ENTRIES:
            del self._compiled[next(iter(self._compiled))]
            self._compiled_stats["evictions"] += 1
        return model

    def montecarlo(self, circuit, output, frequencies, space, *,
                   samples=128, seed=0, solver="lapack", method="auto",
                   workers=None):
        """The circuit's :class:`~repro.analysis.montecarlo.MonteCarloResult`.

        Monte Carlo runs are pure functions of circuit content, output,
        grid, parameter space, ensemble size, seed and solver, so whole
        results are memoized — a yield dashboard re-querying the ensemble a
        report pass already computed gets the stored object back, and the
        nominal response inside shares this session's cached sweep
        factorizations.  ``monte_carlo_analysis(..., session=...)``
        delegates here.
        """
        from ..analysis.montecarlo import _monte_carlo

        frequencies = np.asarray(list(frequencies), dtype=float)
        key = (self.fingerprint(circuit), self._spec_key(output),
               self._grid_key(frequencies), space.key(), int(samples),
               int(seed), solver, method)
        return self._get(
            self._montecarlo, key,
            lambda: _monte_carlo(circuit, output, frequencies, space,
                                 samples, seed, solver, method, workers,
                                 session=self))

    # ------------------------------------------------------------------ #
    # session-backed analyses
    # ------------------------------------------------------------------ #

    def frequency_response(self, circuit, output, frequencies,
                           method="auto") -> np.ndarray:
        """Complex output voltage over a frequency grid (hertz).

        Exactly :meth:`repro.analysis.ac.ACAnalysis.frequency_response`
        wired to this session (one code path, not a reimplementation): the
        batched solve runs against the cached sweep factors, so repeating a
        Bode pass (or running one after a screening pass that factored the
        same grid) costs O(n²) per point instead of O(n³).
        """
        from ..analysis.ac import ACAnalysis

        return ACAnalysis(circuit, output, method=method,
                          session=self).frequency_response(frequencies)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def entry_count(self):
        """Number of cached artifacts across every kind."""
        return sum(len(cache) for cache in self._caches())

    def _caches(self):
        return (self._mna, self._nodal, self._samplers, self._sweeps,
                self._references, self._admittance, self._screenings,
                self._symbolic_nodal, self._symbolic_engines,
                self._symbolic_transfers, self._compiled, self._montecarlo)

    def invalidate(self, circuit=None):
        """Drop cached artifacts — of one circuit, or everything.

        Returns the number of entries removed.
        """
        if circuit is None:
            removed = self.entry_count
            for cache in self._caches():
                cache.clear()
            return removed
        fingerprint = self.fingerprint(circuit)
        removed = 0
        for cache in self._caches():
            stale = [key for key in cache
                     if key == fingerprint
                     or (isinstance(key, tuple) and key
                         and key[0] == fingerprint)]
            for key in stale:
                del cache[key]
            removed += len(stale)
        return removed

    def stats(self) -> Dict[str, int]:
        """Cache statistics plus the process-wide resilience counters.

        ``"compiled"`` carries this session's compiled-transfer cache
        counters: ``compiles`` (builds on miss), ``hits`` (served from
        cache) and ``evictions`` (LRU drops; :meth:`invalidate` removals
        are not evictions).
        """
        from .resilience import telemetry_snapshot

        return {"hits": self.hits, "misses": self.misses,
                "entries": self.entry_count,
                "compiled": dict(self._compiled_stats),
                "resilience": telemetry_snapshot()}

    def __repr__(self):
        return (f"AnalysisSession(entries={self.entry_count}, "
                f"hits={self.hits}, misses={self.misses})")
