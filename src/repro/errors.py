"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Sub-classes are grouped by subsystem: netlist
parsing, circuit construction, linear algebra, interpolation and symbolic
analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class NetlistError(ReproError):
    """Raised for malformed netlists or invalid circuit construction."""


class ParseError(NetlistError):
    """Raised when a netlist file or string cannot be parsed.

    Attributes
    ----------
    line_number:
        1-based line number of the offending line, if known.
    line:
        The raw text of the offending line, if known.
    """

    def __init__(self, message, line_number=None, line=None):
        self.line_number = line_number
        self.line = line
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class ValidationError(NetlistError):
    """Raised when a circuit fails structural validation."""


class UnknownNodeError(NetlistError):
    """Raised when an element refers to a node that does not exist."""


class UnknownElementError(NetlistError):
    """Raised when a reference to a named element cannot be resolved."""


class DeviceModelError(ReproError):
    """Raised for invalid small-signal device model parameters."""


class LinAlgError(ReproError):
    """Raised for linear-algebra failures (singular matrix, shape mismatch)."""


class SingularMatrixError(LinAlgError):
    """Raised when an LU factorization encounters a (numerically) singular pivot.

    Beyond the message, the exception carries structured context so that
    quarantine reports (:class:`repro.engine.resilience.SweepReport`) can name
    the failure precisely without parsing strings:

    Attributes
    ----------
    pivot_index:
        Elimination step / pivot column at which the factorization failed,
        if known.
    dimension:
        Dimension of the (square) matrix being factored, if known.
    sweep_point:
        Index of the frequency-sweep point at which the failure occurred,
        if the solve was part of a sweep.
    sample:
        Ensemble-sample index, if the solve was part of a parameter sweep /
        Monte Carlo ensemble.
    batch_index:
        Index of the offending matrix inside a batched (stacked) solve.
    stage:
        Name of the :class:`repro.engine.resilience.SolvePolicy` escalation
        stage that gave up, when the failure came out of the resilient layer.
    """

    def __init__(self, message, *, pivot_index=None, dimension=None,
                 sweep_point=None, sample=None, batch_index=None, stage=None):
        super().__init__(message)
        self.pivot_index = pivot_index
        self.dimension = dimension
        self.sweep_point = sweep_point
        self.sample = sample
        self.batch_index = batch_index
        self.stage = stage


class SolveFailureError(SingularMatrixError):
    """Raised when the resilient escalation chain exhausts every stage.

    A :class:`SingularMatrixError` subclass (callers catching the classic
    error keep working), raised by ``on_failure="raise"`` resilient solves
    with the full :class:`repro.engine.resilience.SolveDiagnostics` attached
    as ``diagnostics``.
    """

    def __init__(self, message, *, diagnostics=None, **context):
        super().__init__(message, **context)
        self.diagnostics = diagnostics


class CheckpointError(ReproError):
    """Raised for invalid, corrupt or mismatched ensemble checkpoints."""


class ShardFailureError(ReproError):
    """A parallel ensemble shard exhausted its infrastructure retries.

    Raised by the multiprocess supervisor when one shard could not be
    completed by any worker within the retry budget — worker processes died
    (crash, OOM-kill) or hung past the deadline on every attempt.  Distinct
    from *numerical* failure, which is handled per sample (quarantine or a
    :class:`SolveFailureError`), never by re-running a shard.

    Attributes
    ----------
    shard:
        0-based index of the failed shard.
    start, stop:
        The half-open sample range ``[start, stop)`` the shard covers.
    attempts:
        Chronological trail of attempt descriptions, one string per try
        (worker id + what happened to it).
    """

    def __init__(self, message, *, shard=None, start=None, stop=None,
                 attempts=()):
        super().__init__(message)
        self.shard = shard
        self.start = start
        self.stop = stop
        self.attempts = list(attempts)


class FormulationError(ReproError):
    """Raised when a circuit cannot be put in the required matrix form.

    The interpolation engine requires a pure admittance (nodal) formulation;
    circuits with elements that cannot be transformed raise this error.
    """


class InterpolationError(ReproError):
    """Raised for failures inside the polynomial-interpolation engine."""


class ConvergenceError(InterpolationError):
    """Raised when the adaptive-scaling loop cannot cover all coefficients."""


class ReferenceError_(ReproError):
    """Raised for invalid use of a generated numerical reference."""


class SymbolicError(ReproError):
    """Raised for failures in the symbolic-analysis subsystem."""


class SingularEvaluationError(SingularMatrixError, ZeroDivisionError):
    """Raised when a symbolic network function is evaluated at a point where
    its denominator vanishes — the symbolic engine's face of a singular
    system matrix.

    Inherits both :class:`SingularMatrixError` (so all four engines raise the
    same typed error for a singular circuit) and :class:`ZeroDivisionError`
    (the exception this condition historically raised, kept for
    backward compatibility).
    """


class SimplificationError(SymbolicError):
    """Raised when SDG/SBG simplification cannot meet the requested error bound."""
