"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Sub-classes are grouped by subsystem: netlist
parsing, circuit construction, linear algebra, interpolation and symbolic
analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class NetlistError(ReproError):
    """Raised for malformed netlists or invalid circuit construction."""


class ParseError(NetlistError):
    """Raised when a netlist file or string cannot be parsed.

    Attributes
    ----------
    line_number:
        1-based line number of the offending line, if known.
    line:
        The raw text of the offending line, if known.
    """

    def __init__(self, message, line_number=None, line=None):
        self.line_number = line_number
        self.line = line
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class ValidationError(NetlistError):
    """Raised when a circuit fails structural validation."""


class UnknownNodeError(NetlistError):
    """Raised when an element refers to a node that does not exist."""


class UnknownElementError(NetlistError):
    """Raised when a reference to a named element cannot be resolved."""


class DeviceModelError(ReproError):
    """Raised for invalid small-signal device model parameters."""


class LinAlgError(ReproError):
    """Raised for linear-algebra failures (singular matrix, shape mismatch)."""


class SingularMatrixError(LinAlgError):
    """Raised when an LU factorization encounters a (numerically) singular pivot."""


class FormulationError(ReproError):
    """Raised when a circuit cannot be put in the required matrix form.

    The interpolation engine requires a pure admittance (nodal) formulation;
    circuits with elements that cannot be transformed raise this error.
    """


class InterpolationError(ReproError):
    """Raised for failures inside the polynomial-interpolation engine."""


class ConvergenceError(InterpolationError):
    """Raised when the adaptive-scaling loop cannot cover all coefficients."""


class ReferenceError_(ReproError):
    """Raised for invalid use of a generated numerical reference."""


class SymbolicError(ReproError):
    """Raised for failures in the symbolic-analysis subsystem."""


class SimplificationError(SymbolicError):
    """Raised when SDG/SBG simplification cannot meet the requested error bound."""
