"""The :class:`Circuit` container.

A :class:`Circuit` is an ordered collection of elements plus node bookkeeping.
It is the single structural object shared by the netlist parser, the device
expansion step, the nodal / MNA matrix builders, the symbolic engine and the
SBG circuit-reduction pass.

Typical construction::

    from repro.netlist import Circuit

    ckt = Circuit("lowpass")
    ckt.add_resistor("R1", "in", "out", 1e3)
    ckt.add_capacitor("C1", "out", "0", 1e-9)
    ckt.add_voltage_source("Vin", "in", "0", 1.0)

The circuit does not interpret element semantics; the matrix builders in
:mod:`repro.nodal` and :mod:`repro.mna` do.
"""

from __future__ import annotations

import copy as _copy
import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import NetlistError, UnknownElementError, UnknownNodeError
from .elements import (
    CCCS,
    CCVS,
    GROUND,
    Capacitor,
    Conductor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)

__all__ = ["Circuit"]


class Circuit:
    """An ordered collection of circuit elements with node bookkeeping.

    Parameters
    ----------
    name:
        Human-readable circuit name (used in reports and netlist output).
    title:
        Optional longer description.
    """

    def __init__(self, name="circuit", title=None):
        self.name = str(name)
        self.title = title if title is not None else str(name)
        self._elements: Dict[str, Element] = {}
        self._nodes: Dict[str, None] = {GROUND: None}

    # ------------------------------------------------------------------ #
    # element management
    # ------------------------------------------------------------------ #

    def add(self, element):
        """Add an already-constructed :class:`Element`.

        Raises
        ------
        NetlistError
            If an element with the same (case-insensitive) name exists.
        """
        key = element.name.lower()
        if key in self._elements:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._elements[key] = element
        for node in element.nodes:
            self._nodes.setdefault(node, None)
        return element

    def remove(self, name):
        """Remove the element called ``name`` and return it.

        Nodes are never garbage-collected; a node with no remaining elements is
        reported by :func:`repro.netlist.validate.validate_circuit`.
        """
        key = str(name).lower()
        if key not in self._elements:
            raise UnknownElementError(f"no element named {name!r}")
        return self._elements.pop(key)

    def replace(self, element):
        """Replace the element with the same name as ``element`` (add if absent)."""
        self._elements[element.name.lower()] = element
        for node in element.nodes:
            self._nodes.setdefault(node, None)
        return element

    def __contains__(self, name):
        return str(name).lower() in self._elements

    def __getitem__(self, name) -> Element:
        key = str(name).lower()
        if key not in self._elements:
            raise UnknownElementError(f"no element named {name!r}")
        return self._elements[key]

    def get(self, name, default=None):
        """Return the element called ``name`` or ``default``."""
        return self._elements.get(str(name).lower(), default)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __len__(self):
        return len(self._elements)

    @property
    def elements(self) -> List[Element]:
        """All elements in insertion order."""
        return list(self._elements.values())

    def elements_of_type(self, *types) -> List[Element]:
        """All elements that are instances of any of ``types``."""
        return [e for e in self._elements.values() if isinstance(e, types)]

    # ------------------------------------------------------------------ #
    # node management
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> List[str]:
        """All node names, ground first, others in first-use order."""
        return list(self._nodes.keys())

    @property
    def non_ground_nodes(self) -> List[str]:
        """All node names except ground, in first-use order."""
        return [n for n in self._nodes.keys() if n != GROUND]

    def has_node(self, node):
        """True if ``node`` appears in the circuit (ground always does)."""
        return str(node) in self._nodes or str(node).lower() in ("gnd", "ground")

    def require_node(self, node):
        """Return the canonical node name, raising if the node is unknown."""
        node = str(node)
        if node.lower() in ("gnd", "ground"):
            node = GROUND
        if node not in self._nodes:
            raise UnknownNodeError(f"node {node!r} does not exist in {self.name!r}")
        return node

    def node_index(self, include_ground=False) -> Dict[str, int]:
        """Map node name → dense index.

        Ground is excluded by default (index map over unknowns); with
        ``include_ground=True`` ground gets index 0.
        """
        names = self.nodes if include_ground else self.non_ground_nodes
        return {name: i for i, name in enumerate(names)}

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #

    def add_resistor(self, name, node_pos, node_neg, resistance):
        """Add a resistor (ohms)."""
        return self.add(Resistor(name, node_pos, node_neg, resistance))

    def add_conductor(self, name, node_pos, node_neg, conductance):
        """Add a conductance (siemens) — convenient for gds / gpi elements."""
        return self.add(Conductor(name, node_pos, node_neg, conductance))

    def add_capacitor(self, name, node_pos, node_neg, capacitance):
        """Add a capacitor (farads)."""
        return self.add(Capacitor(name, node_pos, node_neg, capacitance))

    def add_inductor(self, name, node_pos, node_neg, inductance):
        """Add an inductor (henries)."""
        return self.add(Inductor(name, node_pos, node_neg, inductance))

    def add_voltage_source(self, name, node_pos, node_neg, value=1.0):
        """Add an independent (AC) voltage source."""
        return self.add(VoltageSource(name, node_pos, node_neg, value))

    def add_current_source(self, name, node_pos, node_neg, value=1.0):
        """Add an independent (AC) current source."""
        return self.add(CurrentSource(name, node_pos, node_neg, value))

    def add_vccs(self, name, node_pos, node_neg, ctrl_pos, ctrl_neg, gm):
        """Add a voltage-controlled current source (transconductance ``gm``)."""
        return self.add(VCCS(name, node_pos, node_neg, ctrl_pos, ctrl_neg, gm))

    def add_vcvs(self, name, node_pos, node_neg, ctrl_pos, ctrl_neg, gain):
        """Add a voltage-controlled voltage source (MNA only)."""
        return self.add(VCVS(name, node_pos, node_neg, ctrl_pos, ctrl_neg, gain))

    def add_cccs(self, name, node_pos, node_neg, ctrl_source, gain):
        """Add a current-controlled current source (MNA only)."""
        return self.add(CCCS(name, node_pos, node_neg, ctrl_source, gain))

    def add_ccvs(self, name, node_pos, node_neg, ctrl_source, gain):
        """Add a current-controlled voltage source (MNA only)."""
        return self.add(CCVS(name, node_pos, node_neg, ctrl_source, gain))

    # ------------------------------------------------------------------ #
    # statistics used by the scaling heuristics
    # ------------------------------------------------------------------ #

    def conductance_values(self) -> List[float]:
        """All conductance magnitudes: resistors (1/R), conductors and |gm| values.

        These feed the paper's first-interpolation heuristic (conductance scale
        factor = inverse of the mean conductance).
        """
        values: List[float] = []
        for element in self._elements.values():
            if isinstance(element, Resistor):
                values.append(1.0 / element.value)
            elif isinstance(element, Conductor):
                if element.value > 0.0:
                    values.append(element.value)
            elif isinstance(element, VCCS):
                if element.gm != 0.0:
                    values.append(abs(element.gm))
        return values

    def capacitance_values(self) -> List[float]:
        """All capacitor values (farads)."""
        return [e.value for e in self.elements_of_type(Capacitor) if e.value > 0.0]

    def mean_conductance(self):
        """Arithmetic mean of all conductance magnitudes (0.0 if none)."""
        values = self.conductance_values()
        if not values:
            return 0.0
        return sum(values) / len(values)

    def mean_capacitance(self):
        """Arithmetic mean of all capacitor values (0.0 if none)."""
        values = self.capacitance_values()
        if not values:
            return 0.0
        return sum(values) / len(values)

    def capacitor_count(self):
        """Number of capacitors with non-zero value (order upper-bound estimate)."""
        return len(self.capacitance_values())

    def summary(self) -> Dict[str, int]:
        """Per-element-type counts, keyed by class name."""
        counts: Dict[str, int] = {}
        for element in self._elements.values():
            counts[type(element).__name__] = counts.get(type(element).__name__, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # copies and edits used by SBG
    # ------------------------------------------------------------------ #

    def copy(self, name=None):
        """Deep copy of the circuit (optionally renamed)."""
        duplicate = Circuit(name or self.name, self.title)
        for element in self._elements.values():
            duplicate.add(_copy.deepcopy(element))
        # Preserve declared-but-unused nodes.
        for node in self._nodes:
            duplicate._nodes.setdefault(node, None)
        return duplicate

    def with_element_removed(self, name, new_name=None):
        """Copy of the circuit with element ``name`` removed (open-circuited)."""
        duplicate = self.copy(new_name or f"{self.name}-without-{name}")
        duplicate.remove(name)
        return duplicate

    def with_element_shorted(self, name, new_name=None):
        """Copy of the circuit with two-terminal element ``name`` replaced by a short.

        The element's positive node is merged into its negative node.  Used by
        the SBG pass when an impedance is negligible.
        """
        element = self[name]
        nodes = element.nodes
        if len(nodes) < 2:
            raise NetlistError(f"cannot short element {name!r}")
        keep, drop = nodes[1], nodes[0]
        if keep == GROUND or drop == GROUND:
            # Always merge into ground when one terminal is ground.
            keep = GROUND
            drop = nodes[0] if nodes[1] == GROUND else nodes[1]
        mapping = {drop: keep}
        duplicate = Circuit(new_name or f"{self.name}-short-{name}", self.title)
        for other in self._elements.values():
            if other.name.lower() == str(name).lower():
                continue
            remapped = other.with_nodes(mapping)
            # Shorting may collapse a two-terminal element onto a single node;
            # such elements vanish from the reduced circuit.
            remapped_nodes = set(remapped.nodes[:2])
            if len(remapped.nodes) >= 2 and len(remapped_nodes) == 1:
                if not isinstance(remapped, (VCCS, VCVS)):
                    continue
            try:
                duplicate.add(remapped)
            except NetlistError:
                continue
        return duplicate

    def with_value_scaled(self, name, factor, new_name=None):
        """Copy of the circuit with element ``name``'s value multiplied by ``factor``."""
        duplicate = self.copy(new_name)
        element = duplicate[name]
        if isinstance(element, VCCS):
            duplicate.replace(dataclasses.replace(element,
                                                  gm=element.gm * factor))
        elif isinstance(element, (Resistor, Conductor, Capacitor, Inductor,
                                  VoltageSource, CurrentSource)):
            duplicate.replace(
                dataclasses.replace(element, value=element.value * factor)
            )
        else:
            raise NetlistError(f"cannot scale element of type {type(element).__name__}")
        return duplicate

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def design_point(self) -> Dict[str, float]:
        """Map element name → value at the design point.

        Resistors are reported as conductances so the symbolic engine (whose
        symbols are admittances) can evaluate terms directly.
        """
        point: Dict[str, float] = {}
        for element in self._elements.values():
            if isinstance(element, Resistor):
                point[element.name] = 1.0 / element.value
            elif isinstance(element, (Conductor, Capacitor, Inductor)):
                point[element.name] = element.value
            elif isinstance(element, VCCS):
                point[element.name] = element.gm
            elif isinstance(element, (VoltageSource, CurrentSource)):
                point[element.name] = element.value
            elif isinstance(element, (VCVS, CCCS, CCVS)):
                point[element.name] = element.gain
        return point

    def __repr__(self):
        return (
            f"Circuit({self.name!r}, elements={len(self._elements)}, "
            f"nodes={len(self._nodes)})"
        )
