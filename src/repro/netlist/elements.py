"""Primitive linear circuit elements.

All elements are small immutable-ish dataclasses carrying a name, their
terminal nodes and their values.  Node names are plain strings; the ground node
is ``"0"`` (also accepted as ``"gnd"`` by the parser, which canonicalizes it).

Element taxonomy
----------------

Admittance-form elements (stampable into a pure nodal admittance matrix):

* :class:`Resistor` / :class:`Conductor` — conductance ``G`` between two nodes,
* :class:`Capacitor` — admittance ``s C`` between two nodes,
* :class:`VCCS` — voltage-controlled current source (transconductance ``gm``),
* :class:`CurrentSource` — independent current excitation (RHS only).

Elements requiring MNA auxiliary equations or a transformation before the
interpolation engine can use them:

* :class:`Inductor` — handled by the gyrator-C transformation,
* :class:`VoltageSource` — input sources are handled by node forcing; internal
  ideal voltage sources require MNA,
* :class:`VCVS`, :class:`CCCS`, :class:`CCVS` — controlled sources with
  non-admittance form (MNA only).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..errors import NetlistError, ValidationError

__all__ = [
    "GROUND",
    "Tolerance",
    "Element",
    "TwoTerminal",
    "Resistor",
    "Conductor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCCS",
    "VCVS",
    "CCCS",
    "CCVS",
]

#: Canonical name of the reference (ground) node.
GROUND = "0"

#: Distributions a :class:`Tolerance` can draw element values from.
TOLERANCE_DISTRIBUTIONS = ("gaussian", "uniform", "corner")


@dataclasses.dataclass(frozen=True)
class Tolerance:
    """Manufacturing tolerance of one element value.

    Attributes
    ----------
    fraction:
        Relative tolerance band, e.g. ``0.05`` for a ±5 % component.
    distribution:
        ``"gaussian"`` (the band is the 3-sigma point, the usual reading of a
        component tolerance), ``"uniform"`` (flat across the band) or
        ``"corner"`` (values only at the band edges).

    The value samplers live in :class:`repro.montecarlo.ParameterSpace`;
    this object is pure metadata carried by the element, so it participates
    in the circuit fingerprint (a re-toleranced circuit is different content).
    """

    fraction: float
    distribution: str = "gaussian"

    def __post_init__(self):
        object.__setattr__(self, "fraction", float(self.fraction))
        # Validate at construction: a bad tolerance caught here names itself,
        # instead of surfacing as a negative element value deep inside
        # ParameterSpace sampling (or a singular matrix deeper still).
        if self.fraction != self.fraction or self.fraction in (
                float("inf"), float("-inf")):
            raise ValidationError(
                f"tolerance fraction must be finite, got {self.fraction!r}"
            )
        if self.fraction <= 0.0:
            raise ValidationError(
                f"tolerance fraction must be positive, got {self.fraction!r}"
            )
        if self.fraction >= 1.0:
            raise ValidationError(
                f"tolerance fraction {self.fraction!r} spans zero: a "
                "relative band of 1 or more lets sampled element values "
                "reach or cross zero"
            )
        if self.distribution not in TOLERANCE_DISTRIBUTIONS:
            raise NetlistError(
                f"unknown tolerance distribution {self.distribution!r} "
                f"(expected one of {TOLERANCE_DISTRIBUTIONS})"
            )


def _check_node(node):
    node = str(node).strip()
    if not node:
        raise NetlistError("empty node name")
    if node.lower() in ("gnd", "ground", "vss!", "0"):
        return GROUND
    return node


@dataclasses.dataclass
class Element:
    """Base class for all circuit elements.

    Attributes
    ----------
    name:
        Unique element name within a circuit (e.g. ``"R1"``, ``"gm2"``).
    """

    name: str

    #: Optional manufacturing tolerance on the element's value — consumed by
    #: the Monte Carlo / tolerance-analysis engine (:mod:`repro.montecarlo`).
    tolerance: Optional[Tolerance] = dataclasses.field(default=None,
                                                       kw_only=True)

    #: Single-letter SPICE-style prefix used by the writer; subclasses override.
    prefix = "X"

    @property
    def nodes(self) -> Tuple[str, ...]:
        """All nodes this element touches (including controlling nodes)."""
        raise NotImplementedError

    def is_admittance(self):
        """True when the element stamps into a pure nodal admittance matrix."""
        return False

    def renamed(self, name):
        """Return a copy of the element with a different name."""
        return dataclasses.replace(self, name=name)

    def with_tolerance(self, fraction, distribution="gaussian"):
        """Copy of the element carrying a :class:`Tolerance`.

        ``fraction`` may also be an already-built :class:`Tolerance` (the
        ``distribution`` argument is then ignored), or ``None`` to strip an
        existing tolerance.
        """
        if fraction is None:
            tolerance = None
        elif isinstance(fraction, Tolerance):
            tolerance = fraction
        else:
            tolerance = Tolerance(fraction, distribution)
        return dataclasses.replace(self, tolerance=tolerance)

    def with_nodes(self, mapping):
        """Return a copy with every node renamed through ``mapping``.

        ``mapping`` is a dict; nodes not present map to themselves.  Used for
        subcircuit flattening.
        """
        raise NotImplementedError


@dataclasses.dataclass
class TwoTerminal(Element):
    """Base class for two-terminal elements between ``node_pos`` and ``node_neg``."""

    node_pos: str
    node_neg: str
    value: float

    def __post_init__(self):
        self.node_pos = _check_node(self.node_pos)
        self.node_neg = _check_node(self.node_neg)
        self.value = float(self.value)
        if self.node_pos == self.node_neg:
            raise NetlistError(
                f"element {self.name!r}: both terminals connect to node "
                f"{self.node_pos!r}"
            )

    @property
    def nodes(self):
        return (self.node_pos, self.node_neg)

    def with_nodes(self, mapping):
        return dataclasses.replace(
            self,
            node_pos=mapping.get(self.node_pos, self.node_pos),
            node_neg=mapping.get(self.node_neg, self.node_neg),
        )


@dataclasses.dataclass
class Resistor(TwoTerminal):
    """Linear resistor with resistance ``value`` in ohms."""

    prefix = "R"

    def __post_init__(self):
        super().__post_init__()
        if self.value <= 0.0:
            raise NetlistError(f"resistor {self.name!r}: non-positive resistance")

    @property
    def conductance(self):
        """Conductance ``1 / R`` in siemens."""
        return 1.0 / self.value

    def is_admittance(self):
        return True


@dataclasses.dataclass
class Conductor(TwoTerminal):
    """Linear conductance with value in siemens (convenient for small-signal gds)."""

    prefix = "R"

    def __post_init__(self):
        super().__post_init__()
        if self.value < 0.0:
            raise NetlistError(f"conductor {self.name!r}: negative conductance")

    @property
    def conductance(self):
        return self.value

    def is_admittance(self):
        return True


@dataclasses.dataclass
class Capacitor(TwoTerminal):
    """Linear capacitor with capacitance ``value`` in farads."""

    prefix = "C"

    def __post_init__(self):
        super().__post_init__()
        if self.value < 0.0:
            raise NetlistError(f"capacitor {self.name!r}: negative capacitance")

    @property
    def capacitance(self):
        return self.value

    def is_admittance(self):
        return True


@dataclasses.dataclass
class Inductor(TwoTerminal):
    """Linear inductor with inductance ``value`` in henries.

    Inductors are not admittance-form elements; the interpolation engine
    converts them with :func:`repro.netlist.transform.transform_inductors`.
    """

    prefix = "L"

    def __post_init__(self):
        super().__post_init__()
        if self.value <= 0.0:
            raise NetlistError(f"inductor {self.name!r}: non-positive inductance")

    @property
    def inductance(self):
        return self.value


@dataclasses.dataclass
class VoltageSource(TwoTerminal):
    """Independent voltage source (small-signal / AC value ``value`` in volts)."""

    prefix = "V"

    def __post_init__(self):
        self.node_pos = _check_node(self.node_pos)
        self.node_neg = _check_node(self.node_neg)
        self.value = float(self.value)
        if self.node_pos == self.node_neg:
            raise NetlistError(
                f"voltage source {self.name!r}: both terminals on the same node"
            )


@dataclasses.dataclass
class CurrentSource(TwoTerminal):
    """Independent current source; positive current flows from ``node_pos`` to
    ``node_neg`` through the source (SPICE convention)."""

    prefix = "I"

    def __post_init__(self):
        self.node_pos = _check_node(self.node_pos)
        self.node_neg = _check_node(self.node_neg)
        self.value = float(self.value)

    def is_admittance(self):
        # Current sources only contribute to the excitation vector, which is
        # compatible with the admittance formulation.
        return True


@dataclasses.dataclass
class VCCS(Element):
    """Voltage-controlled current source (transconductance).

    Current ``gm * (V(ctrl_pos) - V(ctrl_neg))`` flows from ``node_pos`` to
    ``node_neg`` through the source.

    Attributes
    ----------
    gm:
        Transconductance in siemens.  Negative values are allowed (used for
        cross-coupled / positive-feedback structures).
    """

    node_pos: str
    node_neg: str
    ctrl_pos: str
    ctrl_neg: str
    gm: float

    prefix = "G"

    def __post_init__(self):
        self.node_pos = _check_node(self.node_pos)
        self.node_neg = _check_node(self.node_neg)
        self.ctrl_pos = _check_node(self.ctrl_pos)
        self.ctrl_neg = _check_node(self.ctrl_neg)
        self.gm = float(self.gm)

    @property
    def nodes(self):
        return (self.node_pos, self.node_neg, self.ctrl_pos, self.ctrl_neg)

    def is_admittance(self):
        return True

    def with_nodes(self, mapping):
        return dataclasses.replace(
            self,
            node_pos=mapping.get(self.node_pos, self.node_pos),
            node_neg=mapping.get(self.node_neg, self.node_neg),
            ctrl_pos=mapping.get(self.ctrl_pos, self.ctrl_pos),
            ctrl_neg=mapping.get(self.ctrl_neg, self.ctrl_neg),
        )


@dataclasses.dataclass
class VCVS(Element):
    """Voltage-controlled voltage source with gain ``gain`` (MNA only)."""

    node_pos: str
    node_neg: str
    ctrl_pos: str
    ctrl_neg: str
    gain: float

    prefix = "E"

    def __post_init__(self):
        self.node_pos = _check_node(self.node_pos)
        self.node_neg = _check_node(self.node_neg)
        self.ctrl_pos = _check_node(self.ctrl_pos)
        self.ctrl_neg = _check_node(self.ctrl_neg)
        self.gain = float(self.gain)

    @property
    def nodes(self):
        return (self.node_pos, self.node_neg, self.ctrl_pos, self.ctrl_neg)

    def with_nodes(self, mapping):
        return dataclasses.replace(
            self,
            node_pos=mapping.get(self.node_pos, self.node_pos),
            node_neg=mapping.get(self.node_neg, self.node_neg),
            ctrl_pos=mapping.get(self.ctrl_pos, self.ctrl_pos),
            ctrl_neg=mapping.get(self.ctrl_neg, self.ctrl_neg),
        )


@dataclasses.dataclass
class CCCS(Element):
    """Current-controlled current source; control current is the current through
    the named voltage source ``ctrl_source`` (MNA only)."""

    node_pos: str
    node_neg: str
    ctrl_source: str
    gain: float

    prefix = "F"

    def __post_init__(self):
        self.node_pos = _check_node(self.node_pos)
        self.node_neg = _check_node(self.node_neg)
        self.gain = float(self.gain)

    @property
    def nodes(self):
        return (self.node_pos, self.node_neg)

    def with_nodes(self, mapping):
        return dataclasses.replace(
            self,
            node_pos=mapping.get(self.node_pos, self.node_pos),
            node_neg=mapping.get(self.node_neg, self.node_neg),
        )


@dataclasses.dataclass
class CCVS(Element):
    """Current-controlled voltage source (transresistance, MNA only)."""

    node_pos: str
    node_neg: str
    ctrl_source: str
    gain: float

    prefix = "H"

    def __post_init__(self):
        self.node_pos = _check_node(self.node_pos)
        self.node_neg = _check_node(self.node_neg)
        self.gain = float(self.gain)

    @property
    def nodes(self):
        return (self.node_pos, self.node_neg)

    def with_nodes(self, mapping):
        return dataclasses.replace(
            self,
            node_pos=mapping.get(self.node_pos, self.node_pos),
            node_neg=mapping.get(self.node_neg, self.node_neg),
        )
