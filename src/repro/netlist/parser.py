"""SPICE-like netlist parser.

The parser accepts a practical subset of SPICE syntax sufficient to describe
the small-signal circuits used in symbolic analysis:

* primitive elements ``R``, ``C``, ``L``, ``V``, ``I``, ``G`` (VCCS), ``E``
  (VCVS), ``F`` (CCCS), ``H`` (CCVS),
* small-signal transistor instances ``M`` (MOSFET) and ``Q`` (BJT) and diodes
  ``D``, expanded into their hybrid-π / level-1 small-signal equivalents using
  ``.model`` cards plus per-instance operating-point parameters,
* ``.subckt`` / ``.ends`` definitions and ``X`` instances (flattened),
* ``*`` comments, ``;`` trailing comments and ``+`` continuation lines,
* ``.model``, ``.end`` and ``.title`` cards (other dot-cards are ignored with a
  warning list returned on request).

Example
-------
::

    * single-pole amplifier
    .model nch nmos (gm=1m gds=20u cgs=50f cgd=5f)
    Vin in 0 ac 1
    M1 out in 0 0 nch
    RL out 0 100k
    CL out 0 1p
    .end
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ParseError
from ..units import parse_value
from .circuit import Circuit

__all__ = ["parse_netlist", "parse_netlist_file", "ModelCard", "SubcktDef"]


@dataclasses.dataclass
class ModelCard:
    """A ``.model`` card: a named bag of device parameters."""

    name: str
    kind: str
    params: Dict[str, float]


@dataclasses.dataclass
class SubcktDef:
    """A ``.subckt`` definition: interface nodes plus body lines."""

    name: str
    ports: List[str]
    lines: List[Tuple[int, str]]


def parse_netlist_file(path):
    """Parse a netlist file from disk; see :func:`parse_netlist`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_netlist(handle.read(), name=str(path))


def parse_netlist(text, name="netlist"):
    """Parse netlist ``text`` and return a flattened :class:`Circuit`.

    Parameters
    ----------
    text:
        The netlist source.
    name:
        Name given to the resulting circuit (the ``.title`` card, or the first
        comment-like title line, overrides it).

    Raises
    ------
    ParseError
        On any syntax error; the exception carries the offending line number.
    """
    parser = _NetlistParser(name)
    return parser.parse(text)


_PARAM_RE = re.compile(r"([A-Za-z_][A-Za-z_0-9]*)\s*=\s*([^\s()=]+)")


def _split_params(tokens):
    """Split a token list into (positional tokens, {param: value})."""
    positional: List[str] = []
    params: Dict[str, float] = {}
    text = " ".join(tokens)
    # Extract name=value pairs anywhere on the line.
    consumed_spans = []
    for match in _PARAM_RE.finditer(text):
        params[match.group(1).lower()] = parse_value(match.group(2))
        consumed_spans.append(match.span())
    # Remaining text (outside parameter assignments) forms the positional part.
    remainder = []
    last = 0
    for start, end in consumed_spans:
        remainder.append(text[last:start])
        last = end
    remainder.append(text[last:])
    for token in " ".join(remainder).replace("(", " ").replace(")", " ").split():
        positional.append(token)
    return positional, params


class _NetlistParser:
    """Stateful parser; one instance per :func:`parse_netlist` call."""

    def __init__(self, name):
        self.name = name
        self.models: Dict[str, ModelCard] = {}
        self.subckts: Dict[str, SubcktDef] = {}
        self.ignored_cards: List[str] = []
        self.title: Optional[str] = None

    # -- line preprocessing ------------------------------------------------

    @staticmethod
    def _physical_lines(text):
        for i, raw in enumerate(text.splitlines(), start=1):
            yield i, raw

    @staticmethod
    def _strip_comment(line):
        # ';' and '$' start trailing comments.
        for marker in (";", "$ "):
            index = line.find(marker)
            if index >= 0:
                line = line[:index]
        return line.rstrip()

    def _logical_lines(self, text):
        """Join '+' continuations, drop comments and blank lines."""
        logical: List[Tuple[int, str]] = []
        for number, raw in self._physical_lines(text):
            line = self._strip_comment(raw)
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("*"):
                if self.title is None and number <= 2 and len(stripped) > 1:
                    self.title = stripped[1:].strip()
                continue
            if stripped.startswith("+"):
                if not logical:
                    raise ParseError("continuation line with no previous line",
                                     line_number=number, line=raw)
                prev_number, prev_text = logical[-1]
                logical[-1] = (prev_number, prev_text + " " + stripped[1:].strip())
            else:
                logical.append((number, stripped))
        return logical

    # -- main entry ---------------------------------------------------------

    def parse(self, text):
        logical = self._logical_lines(text)
        body: List[Tuple[int, str]] = []
        # First pass: collect .model and .subckt cards; everything else is body.
        iterator = iter(logical)
        for number, line in iterator:
            lower = line.lower()
            if lower.startswith(".model"):
                self._parse_model(number, line)
            elif lower.startswith(".subckt"):
                self._parse_subckt(number, line, iterator)
            elif lower.startswith(".title"):
                self.title = line[len(".title"):].strip()
            elif lower.startswith(".end") and not lower.startswith(".ends"):
                break
            elif lower.startswith("."):
                self.ignored_cards.append(line.split()[0].lower())
            else:
                body.append((number, line))

        circuit = Circuit(self.name, self.title or self.name)
        for number, line in body:
            self._add_line(circuit, number, line, prefix="", node_map={})
        return circuit

    # -- dot cards ----------------------------------------------------------

    def _parse_model(self, number, line):
        tokens = line.split()
        if len(tokens) < 3:
            raise ParseError(".model needs a name and a type",
                             line_number=number, line=line)
        name = tokens[1].lower()
        kind = tokens[2].split("(")[0].lower()
        __, params = _split_params(tokens[2:])
        self.models[name] = ModelCard(name=name, kind=kind, params=params)

    def _parse_subckt(self, number, line, iterator):
        tokens = line.split()
        if len(tokens) < 2:
            raise ParseError(".subckt needs a name", line_number=number, line=line)
        name = tokens[1].lower()
        ports = tokens[2:]
        lines: List[Tuple[int, str]] = []
        for sub_number, sub_line in iterator:
            lower = sub_line.lower()
            if lower.startswith(".ends"):
                self.subckts[name] = SubcktDef(name=name, ports=ports, lines=lines)
                return
            if lower.startswith(".model"):
                self._parse_model(sub_number, sub_line)
                continue
            lines.append((sub_number, sub_line))
        raise ParseError(f"unterminated .subckt {name!r}", line_number=number, line=line)

    # -- element lines ------------------------------------------------------

    def _add_line(self, circuit, number, line, prefix, node_map):
        letter = line[0].lower()
        tokens = line.split()
        handler = {
            "r": self._add_resistor,
            "c": self._add_capacitor,
            "l": self._add_inductor,
            "v": self._add_vsource,
            "i": self._add_isource,
            "g": self._add_vccs,
            "e": self._add_vcvs,
            "f": self._add_cccs,
            "h": self._add_ccvs,
            "m": self._add_mosfet,
            "q": self._add_bjt,
            "d": self._add_diode,
            "x": self._add_subckt_instance,
        }.get(letter)
        if handler is None:
            raise ParseError(f"unknown element type {line[0]!r}",
                             line_number=number, line=line)
        try:
            handler(circuit, number, tokens, prefix, node_map)
        except ParseError:
            raise
        except Exception as exc:  # surface element construction errors with context
            raise ParseError(str(exc), line_number=number, line=line) from exc

    @staticmethod
    def _map_node(node, node_map, prefix):
        node = str(node)
        if node.lower() in ("0", "gnd", "ground"):
            return "0"
        if node in node_map:
            return node_map[node]
        if prefix:
            return f"{prefix}{node}"
        return node

    def _name(self, token, prefix):
        return f"{prefix}{token}" if prefix else token

    def _require(self, tokens, count, number):
        if len(tokens) < count:
            raise ParseError(
                f"element line needs at least {count} fields, got {len(tokens)}",
                line_number=number, line=" ".join(tokens))

    # individual element handlers ------------------------------------------

    def _add_resistor(self, circuit, number, tokens, prefix, node_map):
        self._require(tokens, 4, number)
        name = self._name(tokens[0], prefix)
        a = self._map_node(tokens[1], node_map, prefix)
        b = self._map_node(tokens[2], node_map, prefix)
        circuit.add_resistor(name, a, b, parse_value(tokens[3]))

    def _add_capacitor(self, circuit, number, tokens, prefix, node_map):
        self._require(tokens, 4, number)
        name = self._name(tokens[0], prefix)
        a = self._map_node(tokens[1], node_map, prefix)
        b = self._map_node(tokens[2], node_map, prefix)
        circuit.add_capacitor(name, a, b, parse_value(tokens[3]))

    def _add_inductor(self, circuit, number, tokens, prefix, node_map):
        self._require(tokens, 4, number)
        name = self._name(tokens[0], prefix)
        a = self._map_node(tokens[1], node_map, prefix)
        b = self._map_node(tokens[2], node_map, prefix)
        circuit.add_inductor(name, a, b, parse_value(tokens[3]))

    @staticmethod
    def _source_value(tokens):
        """Extract the AC magnitude from a source line (``ac <mag>`` or plain value)."""
        lowered = [t.lower() for t in tokens]
        if "ac" in lowered:
            index = lowered.index("ac")
            if index + 1 < len(tokens):
                return parse_value(tokens[index + 1])
            return 1.0
        if len(tokens) > 3:
            try:
                return parse_value(tokens[3])
            except ParseError:
                return 0.0
        return 0.0

    def _add_vsource(self, circuit, number, tokens, prefix, node_map):
        self._require(tokens, 3, number)
        name = self._name(tokens[0], prefix)
        a = self._map_node(tokens[1], node_map, prefix)
        b = self._map_node(tokens[2], node_map, prefix)
        circuit.add_voltage_source(name, a, b, self._source_value(tokens))

    def _add_isource(self, circuit, number, tokens, prefix, node_map):
        self._require(tokens, 3, number)
        name = self._name(tokens[0], prefix)
        a = self._map_node(tokens[1], node_map, prefix)
        b = self._map_node(tokens[2], node_map, prefix)
        circuit.add_current_source(name, a, b, self._source_value(tokens))

    def _add_vccs(self, circuit, number, tokens, prefix, node_map):
        self._require(tokens, 6, number)
        name = self._name(tokens[0], prefix)
        nodes = [self._map_node(t, node_map, prefix) for t in tokens[1:5]]
        circuit.add_vccs(name, nodes[0], nodes[1], nodes[2], nodes[3],
                         parse_value(tokens[5]))

    def _add_vcvs(self, circuit, number, tokens, prefix, node_map):
        self._require(tokens, 6, number)
        name = self._name(tokens[0], prefix)
        nodes = [self._map_node(t, node_map, prefix) for t in tokens[1:5]]
        circuit.add_vcvs(name, nodes[0], nodes[1], nodes[2], nodes[3],
                         parse_value(tokens[5]))

    def _add_cccs(self, circuit, number, tokens, prefix, node_map):
        self._require(tokens, 5, number)
        name = self._name(tokens[0], prefix)
        a = self._map_node(tokens[1], node_map, prefix)
        b = self._map_node(tokens[2], node_map, prefix)
        circuit.add_cccs(name, a, b, self._name(tokens[3], prefix),
                         parse_value(tokens[4]))

    def _add_ccvs(self, circuit, number, tokens, prefix, node_map):
        self._require(tokens, 5, number)
        name = self._name(tokens[0], prefix)
        a = self._map_node(tokens[1], node_map, prefix)
        b = self._map_node(tokens[2], node_map, prefix)
        circuit.add_ccvs(name, a, b, self._name(tokens[3], prefix),
                         parse_value(tokens[4]))

    # devices ----------------------------------------------------------------

    def _lookup_model(self, model_name, number, line_tokens):
        model = self.models.get(model_name.lower())
        if model is None:
            raise ParseError(f"unknown model {model_name!r}",
                             line_number=number, line=" ".join(line_tokens))
        return model

    def _add_mosfet(self, circuit, number, tokens, prefix, node_map):
        # Mname drain gate source bulk model [param=value ...]
        from ..devices.expand import expand_mosfet
        from ..devices.mosfet import MosfetSmallSignal

        positional, params = _split_params(tokens)
        self._require(positional, 6, number)
        name = self._name(positional[0], prefix)
        drain, gate, source, bulk = (
            self._map_node(t, node_map, prefix) for t in positional[1:5]
        )
        model = self._lookup_model(positional[5], number, tokens)
        merged = dict(model.params)
        merged.update(params)
        small_signal = MosfetSmallSignal.from_params(merged, polarity=model.kind)
        expand_mosfet(circuit, name, drain, gate, source, bulk, small_signal)

    def _add_bjt(self, circuit, number, tokens, prefix, node_map):
        # Qname collector base emitter model [param=value ...]
        from ..devices.bjt import BjtSmallSignal
        from ..devices.expand import expand_bjt

        positional, params = _split_params(tokens)
        self._require(positional, 5, number)
        name = self._name(positional[0], prefix)
        collector, base, emitter = (
            self._map_node(t, node_map, prefix) for t in positional[1:4]
        )
        model = self._lookup_model(positional[4], number, tokens)
        merged = dict(model.params)
        merged.update(params)
        small_signal = BjtSmallSignal.from_params(merged, polarity=model.kind)
        expand_bjt(circuit, name, collector, base, emitter, small_signal)

    def _add_diode(self, circuit, number, tokens, prefix, node_map):
        # Dname anode cathode model [param=value ...]
        from ..devices.diode import DiodeSmallSignal
        from ..devices.expand import expand_diode

        positional, params = _split_params(tokens)
        self._require(positional, 4, number)
        name = self._name(positional[0], prefix)
        anode = self._map_node(positional[1], node_map, prefix)
        cathode = self._map_node(positional[2], node_map, prefix)
        model = self._lookup_model(positional[3], number, tokens)
        merged = dict(model.params)
        merged.update(params)
        small_signal = DiodeSmallSignal.from_params(merged)
        expand_diode(circuit, name, anode, cathode, small_signal)

    # subcircuits -------------------------------------------------------------

    def _add_subckt_instance(self, circuit, number, tokens, prefix, node_map):
        # Xname node1 node2 ... subcktname
        self._require(tokens, 3, number)
        instance = tokens[0]
        subckt_name = tokens[-1].lower()
        subckt = self.subckts.get(subckt_name)
        if subckt is None:
            raise ParseError(f"unknown subcircuit {subckt_name!r}",
                             line_number=number, line=" ".join(tokens))
        actual_nodes = [self._map_node(t, node_map, prefix) for t in tokens[1:-1]]
        if len(actual_nodes) != len(subckt.ports):
            raise ParseError(
                f"subcircuit {subckt_name!r} expects {len(subckt.ports)} nodes, "
                f"got {len(actual_nodes)}",
                line_number=number, line=" ".join(tokens))
        inner_prefix = f"{prefix}{instance}."
        inner_map = dict(zip(subckt.ports, actual_nodes))
        for sub_number, sub_line in subckt.lines:
            self._add_line(circuit, sub_number, sub_line, inner_prefix, inner_map)
