"""Netlist serialization.

Writes a :class:`~repro.netlist.circuit.Circuit` of primitive elements back to
SPICE-like text.  Device instances are expanded at parse time, so the writer
only has to handle primitives; round-tripping a parsed netlist therefore
produces the *flattened small-signal* circuit, which is exactly what the
matrix builders consume.
"""

from __future__ import annotations

from typing import Iterable

from ..units import format_value
from .circuit import Circuit
from .elements import (
    CCCS,
    CCVS,
    Capacitor,
    Conductor,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)

__all__ = ["write_netlist", "element_to_line"]


def element_to_line(element):
    """Render one primitive element as a netlist line."""
    if isinstance(element, Resistor):
        return f"{element.name} {element.node_pos} {element.node_neg} " \
               f"{format_value(element.value)}"
    if isinstance(element, Conductor):
        # Conductances are emitted as resistors of value 1/G to stay within
        # standard SPICE element types.
        resistance = float("inf") if element.value == 0.0 else 1.0 / element.value
        return f"{element.name} {element.node_pos} {element.node_neg} " \
               f"{format_value(resistance)}"
    if isinstance(element, Capacitor):
        return f"{element.name} {element.node_pos} {element.node_neg} " \
               f"{format_value(element.value)}"
    if isinstance(element, Inductor):
        return f"{element.name} {element.node_pos} {element.node_neg} " \
               f"{format_value(element.value)}"
    if isinstance(element, VoltageSource):
        return f"{element.name} {element.node_pos} {element.node_neg} " \
               f"ac {format_value(element.value)}"
    if isinstance(element, CurrentSource):
        return f"{element.name} {element.node_pos} {element.node_neg} " \
               f"ac {format_value(element.value)}"
    if isinstance(element, VCCS):
        return (f"{element.name} {element.node_pos} {element.node_neg} "
                f"{element.ctrl_pos} {element.ctrl_neg} {format_value(element.gm)}")
    if isinstance(element, VCVS):
        return (f"{element.name} {element.node_pos} {element.node_neg} "
                f"{element.ctrl_pos} {element.ctrl_neg} {format_value(element.gain)}")
    if isinstance(element, CCCS):
        return (f"{element.name} {element.node_pos} {element.node_neg} "
                f"{element.ctrl_source} {format_value(element.gain)}")
    if isinstance(element, CCVS):
        return (f"{element.name} {element.node_pos} {element.node_neg} "
                f"{element.ctrl_source} {format_value(element.gain)}")
    raise TypeError(f"cannot serialize element of type {type(element).__name__}")


def write_netlist(circuit, path=None):
    """Serialize ``circuit`` to netlist text; optionally write it to ``path``.

    Returns
    -------
    str
        The netlist text (also written to ``path`` when given).
    """
    lines = [f"* {circuit.title}"]
    for element in circuit:
        lines.append(element_to_line(element))
    lines.append(".end")
    text = "\n".join(lines) + "\n"
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
