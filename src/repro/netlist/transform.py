"""Admittance-form circuit transformations.

The interpolation engine relies on the exact bookkeeping of Eq. (11) in the
paper (``p'_i = p_i f^i g^(M-i)``), which holds when every term of the nodal
determinant is a product of exactly ``M`` admittances.  That is the case for
circuits made only of conductances, capacitances and VCCS elements (plus
excitation sources).  This module transforms more general circuits into that
form where an exact transformation exists:

* :func:`transform_inductors` replaces every inductor with a gyrator-C
  equivalent (two unit-transconductance VCCSs plus a grounded capacitor of
  value ``L``), following the transformation methods referenced by the paper
  (Lin, *Symbolic Network Analysis*).
* :func:`norton_transform_sources` converts voltage sources with a series
  resistor into Norton equivalents.
* :func:`merge_parallel_admittances` merges parallel capacitors and parallel
  conductances between identical node pairs, which tightens the polynomial
  order estimate (one capacitor per independent node pair).
* :func:`to_admittance_form` applies the above and verifies the result only
  contains admittance-form elements (input sources excepted).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from ..errors import FormulationError
from .circuit import Circuit
from .elements import (
    CCCS,
    CCVS,
    Capacitor,
    Conductor,
    CurrentSource,
    GROUND,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)

__all__ = [
    "transform_inductors",
    "norton_transform_sources",
    "merge_parallel_admittances",
    "to_admittance_form",
]


def transform_inductors(circuit, gyrator_gm=1.0):
    """Return a copy of ``circuit`` with every inductor replaced by a gyrator-C.

    An inductor ``L`` between nodes ``a`` and ``b`` has admittance
    ``1 / (s L)``.  The equivalent uses an internal node ``x``:

    * a VCCS injecting ``gm * (V_a - V_b)`` into ``x``,
    * a capacitor of value ``L * gm**2`` from ``x`` to ground,
    * a VCCS drawing ``gm * V_x`` from ``a`` to ``b``.

    With ``gm = 1`` the branch current is ``(V_a - V_b) / (s L)`` — exactly the
    inductor — and both added elements are admittance-form.
    """
    result = Circuit(circuit.name, circuit.title)
    for element in circuit:
        if not isinstance(element, Inductor):
            result.add(element)
            continue
        internal = f"{element.name}.gyr"
        a, b = element.node_pos, element.node_neg
        cap_value = element.value * gyrator_gm * gyrator_gm
        # Current gm*(Va-Vb) flows *into* node x: source from x to ground with
        # negative transconductance, per the VCCS sign convention (current
        # leaves node_pos).
        result.add_vccs(f"{element.name}.gy1", internal, GROUND, a, b, -gyrator_gm)
        result.add_capacitor(f"{element.name}.cl", internal, GROUND, cap_value)
        result.add_vccs(f"{element.name}.gy2", a, b, internal, GROUND, gyrator_gm)
    return result


def norton_transform_sources(circuit):
    """Convert voltage sources that have a single series resistor to Norton form.

    A voltage source ``V`` in series with resistor ``R`` (sharing one exclusive
    internal node) becomes a current source ``V / R`` in parallel with ``R``.
    Sources that are not in such a configuration are left untouched.
    """
    result = circuit.copy()
    touch: Dict[str, List[str]] = defaultdict(list)
    for element in result:
        for node in element.nodes[:2]:
            touch[node].append(element.name)

    for source in list(result.elements_of_type(VoltageSource)):
        for shared, other_terminal in ((source.node_pos, source.node_neg),
                                       (source.node_neg, source.node_pos)):
            if shared == GROUND:
                continue
            attached = touch[shared]
            if len(attached) != 2:
                continue
            partner_name = next(n for n in attached if n != source.name)
            partner = result[partner_name]
            if not isinstance(partner, Resistor):
                continue
            far_node = (partner.node_neg if partner.node_pos == shared
                        else partner.node_pos)
            resistance = partner.value
            current = source.value / resistance
            result.remove(source.name)
            result.remove(partner.name)
            # Norton: current source from far_node to other_terminal, with the
            # resistor across the same pair.
            result.add_resistor(partner.name, far_node, other_terminal, resistance)
            result.add_current_source(source.name, other_terminal, far_node, current)
            break
    # Rebuild the circuit so nodes that lost all their elements (the internal
    # node between a transformed source and its resistor) disappear from the
    # node registry.
    rebuilt = Circuit(result.name, result.title)
    for element in result:
        rebuilt.add(element)
    return rebuilt


def merge_parallel_admittances(circuit):
    """Merge parallel capacitors and parallel conductances/resistors.

    Elements between the same (unordered) node pair are combined: capacitances
    add, conductances add.  VCCS elements and sources are never merged.  The
    merged element keeps the name of the first element of the group.
    """
    result = Circuit(circuit.name, circuit.title)
    cap_groups: Dict[Tuple[str, str], List[Capacitor]] = defaultdict(list)
    cond_groups: Dict[Tuple[str, str], List] = defaultdict(list)

    def pair_key(element):
        return tuple(sorted((element.node_pos, element.node_neg)))

    for element in circuit:
        if isinstance(element, Capacitor):
            cap_groups[pair_key(element)].append(element)
        elif isinstance(element, (Resistor, Conductor)):
            cond_groups[pair_key(element)].append(element)
        else:
            result.add(element)

    for group in cap_groups.values():
        total = sum(e.value for e in group)
        first = group[0]
        result.add_capacitor(first.name, first.node_pos, first.node_neg, total)

    for group in cond_groups.values():
        total = 0.0
        for e in group:
            total += (1.0 / e.value) if isinstance(e, Resistor) else e.value
        first = group[0]
        result.add_conductor(first.name, first.node_pos, first.node_neg, total)

    return result


def to_admittance_form(circuit, merge_parallel=False):
    """Return an admittance-form copy of ``circuit``.

    Applies :func:`transform_inductors` and (optionally)
    :func:`merge_parallel_admittances`, then verifies that only admittance-form
    elements plus independent sources remain.

    Raises
    ------
    FormulationError
        If VCVS / CCCS / CCVS elements remain — these have no exact
        admittance-form equivalent and require the MNA formulation.
    """
    result = transform_inductors(circuit)
    if merge_parallel:
        result = merge_parallel_admittances(result)
    offenders = [e.name for e in result.elements_of_type(VCVS, CCCS, CCVS)]
    if offenders:
        raise FormulationError(
            "circuit contains non-admittance controlled sources "
            f"({', '.join(offenders)}); use the MNA analysis instead or model "
            "them with VCCS/conductance equivalents"
        )
    return result
