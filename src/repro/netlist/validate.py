"""Structural validation of circuits.

The matrix builders assume a structurally sane circuit: a ground node exists
and every node can reach ground through element connections, no node is
dangling (touched by fewer than two element terminals), and controlled sources
reference existing controlling nodes / sources.  :func:`validate_circuit`
checks these properties and either raises or returns a report.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict, deque
from typing import Dict, List, Set

from ..errors import ValidationError
from .circuit import Circuit
from .elements import CCCS, CCVS, GROUND, CurrentSource, Element, VoltageSource

__all__ = ["ValidationReport", "validate_circuit"]


@dataclasses.dataclass
class ValidationReport:
    """Result of :func:`validate_circuit`.

    Attributes
    ----------
    errors:
        Fatal structural problems (unreachable nodes, missing ground path,
        missing controlled-source references).
    warnings:
        Non-fatal issues (dangling nodes touched by a single terminal, sources
        with zero value).
    """

    errors: List[str] = dataclasses.field(default_factory=list)
    warnings: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self):
        """True when there are no fatal errors."""
        return not self.errors

    def raise_if_failed(self):
        """Raise :class:`ValidationError` when any fatal error was recorded."""
        if self.errors:
            raise ValidationError("; ".join(self.errors))


def _adjacency(circuit):
    """Node adjacency through element *conducting* terminals.

    Controlling terminals of a VCCS do not conduct current, so they do not
    create a connectivity path; they are checked separately.
    """
    adjacency: Dict[str, Set[str]] = defaultdict(set)
    for element in circuit:
        conducting = element.nodes[:2]
        if len(conducting) == 2:
            a, b = conducting
            adjacency[a].add(b)
            adjacency[b].add(a)
    return adjacency


def _reachable_from_ground(circuit):
    adjacency = _adjacency(circuit)
    seen: Set[str] = {GROUND}
    queue = deque([GROUND])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return seen


def validate_circuit(circuit, raise_on_error=True):
    """Validate ``circuit`` and return a :class:`ValidationReport`.

    Parameters
    ----------
    circuit:
        The circuit to validate.
    raise_on_error:
        When true (default), raise :class:`~repro.errors.ValidationError`
        instead of returning a failing report.
    """
    report = ValidationReport()

    if len(circuit) == 0:
        report.errors.append("circuit has no elements")
    else:
        # Ground connectivity.
        reachable = _reachable_from_ground(circuit)
        for node in circuit.non_ground_nodes:
            if node not in reachable:
                report.errors.append(
                    f"node {node!r} has no conducting path to ground"
                )

        # Terminal counts (dangling node detection).
        touch_count: Dict[str, int] = defaultdict(int)
        for element in circuit:
            for node in element.nodes[:2]:
                touch_count[node] += 1
        for node in circuit.non_ground_nodes:
            if touch_count.get(node, 0) == 0:
                report.warnings.append(f"node {node!r} is not used by any element")
            elif touch_count.get(node, 0) == 1:
                report.warnings.append(
                    f"node {node!r} is touched by a single element terminal"
                )

        # Controlled-source references.
        names = {element.name.lower() for element in circuit}
        node_set = set(circuit.nodes)
        for element in circuit:
            if isinstance(element, (CCCS, CCVS)):
                if element.ctrl_source.lower() not in names:
                    report.errors.append(
                        f"{element.name}: controlling source "
                        f"{element.ctrl_source!r} not found"
                    )
            for node in element.nodes:
                if node not in node_set:
                    report.errors.append(
                        f"{element.name}: node {node!r} is unknown"
                    )

        # Excitation sanity.
        sources = circuit.elements_of_type(VoltageSource, CurrentSource)
        if sources and all(source.value == 0.0 for source in sources):
            report.warnings.append("all independent sources have zero AC value")

    if raise_on_error:
        report.raise_if_failed()
    return report
