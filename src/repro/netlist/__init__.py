"""Circuit description substrate: elements, circuits, parsing and transforms.

The netlist package provides the structural representation of analog circuits
used throughout the library:

* :mod:`repro.netlist.elements` — primitive linear(ized) circuit elements,
* :mod:`repro.netlist.circuit` — the :class:`~repro.netlist.circuit.Circuit`
  container with node bookkeeping,
* :mod:`repro.netlist.parser` — a SPICE-like netlist parser (with ``.subckt``
  flattening and small-signal device expansion),
* :mod:`repro.netlist.writer` — netlist serialization,
* :mod:`repro.netlist.validate` — structural validation (connectivity, ground,
  dangling nodes),
* :mod:`repro.netlist.transform` — admittance-form transformations
  (inductor→gyrator-C, Norton equivalents, parallel merges).
"""

from .elements import (
    Element,
    Tolerance,
    Resistor,
    Conductor,
    Capacitor,
    Inductor,
    VoltageSource,
    CurrentSource,
    VCCS,
    VCVS,
    CCCS,
    CCVS,
    GROUND,
)
from .circuit import Circuit
from .parser import parse_netlist, parse_netlist_file
from .writer import write_netlist
from .validate import validate_circuit
from .transform import (
    to_admittance_form,
    transform_inductors,
    merge_parallel_admittances,
    norton_transform_sources,
)

__all__ = [
    "Element",
    "Tolerance",
    "Resistor",
    "Conductor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCCS",
    "VCVS",
    "CCCS",
    "CCVS",
    "GROUND",
    "Circuit",
    "parse_netlist",
    "parse_netlist_file",
    "write_netlist",
    "validate_circuit",
    "to_admittance_form",
    "transform_inductors",
    "merge_parallel_admittances",
    "norton_transform_sources",
]
