"""Engineering-notation value parsing and formatting.

SPICE-style netlists express element values with SI / engineering suffixes
(``30p``, ``1k``, ``2.5meg``, ``10u``).  This module converts between such
strings and floats, and formats floats back into compact engineering notation
for reports and netlist writing.

The parser follows SPICE conventions:

* suffixes are case-insensitive,
* ``m`` is milli and ``meg`` (or ``x``) is mega,
* trailing unit names after the suffix are ignored (``30pF`` == ``30p``),
* a plain number without suffix is accepted.
"""

from __future__ import annotations

import math
import re

from .errors import ParseError

__all__ = [
    "parse_value",
    "format_value",
    "format_si",
    "SUFFIX_SCALE",
]

#: Mapping of SPICE engineering suffixes to multipliers.  Longer suffixes must
#: be matched before shorter ones (``meg`` before ``m``).
SUFFIX_SCALE = {
    "meg": 1e6,
    "mil": 25.4e-6,
    "t": 1e12,
    "g": 1e9,
    "x": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

_VALUE_RE = re.compile(
    r"""^\s*
        (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        (?P<rest>[a-zA-Z%]*)\s*$""",
    re.VERBOSE,
)

#: Multipliers used when *formatting* values; keys are exponents of 10**3.
_FORMAT_SUFFIXES = {
    -18: "a",
    -15: "f",
    -12: "p",
    -9: "n",
    -6: "u",
    -3: "m",
    0: "",
    3: "k",
    6: "meg",
    9: "g",
    12: "t",
}


def parse_value(text):
    """Parse a SPICE-style value string into a float.

    Parameters
    ----------
    text:
        A number with optional engineering suffix and optional trailing unit,
        e.g. ``"30p"``, ``"2.5meg"``, ``"1e-12"``, ``"4.7kohm"``.  Floats and
        ints are passed through unchanged.

    Returns
    -------
    float
        The numeric value.

    Raises
    ------
    ParseError
        If ``text`` is not a valid value string.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _VALUE_RE.match(str(text))
    if match is None:
        raise ParseError(f"invalid value: {text!r}")
    number = float(match.group("number"))
    rest = match.group("rest").lower()
    if not rest:
        return number
    # Longest-prefix match against known suffixes; anything after the suffix is
    # treated as a unit name and ignored (SPICE behaviour).
    for suffix in ("meg", "mil"):
        if rest.startswith(suffix):
            return number * SUFFIX_SCALE[suffix]
    scale = SUFFIX_SCALE.get(rest[0])
    if scale is None:
        # Unknown letter: SPICE ignores it entirely (e.g. "10ohm", "5V").
        return number
    return number * scale


def format_value(value, digits=4):
    """Format ``value`` using an engineering suffix when one fits.

    ``format_value(3.3e-12)`` returns ``"3.3p"``; values outside the suffix
    table fall back to scientific notation.
    """
    value = float(value)
    if value == 0.0:
        return "0"
    if math.isnan(value) or math.isinf(value):
        return repr(value)
    exponent = int(math.floor(math.log10(abs(value)) / 3.0)) * 3
    suffix = _FORMAT_SUFFIXES.get(exponent)
    if suffix is None:
        return f"{value:.{digits}g}"
    mantissa = value / 10.0**exponent
    text = f"{mantissa:.{digits}g}"
    return f"{text}{suffix}"


def format_si(value, unit="", digits=4):
    """Format ``value`` with an engineering suffix and a unit label.

    Examples
    --------
    >>> format_si(30e-12, "F")
    '30p F'.replace(' ', '') if unit else ...
    """
    body = format_value(value, digits=digits)
    if not unit:
        return body
    return f"{body}{unit}"
