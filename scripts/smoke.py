"""Quick development smoke test of the core pipeline (not part of the suite)."""
import math
import time

import numpy as np

from repro import (
    TransferSpec,
    build_positive_feedback_ota,
    build_rc_ladder,
    build_ua741,
    generate_reference,
    interpolate_network_function,
)
from repro.circuits.rc_ladder import rc_ladder_denominator_coefficients
from repro.interpolation import AdaptiveOptions, ScaleFactors
from repro.nodal.sampler import NetworkFunctionSampler
from repro.netlist.transform import to_admittance_form


def check_rc_ladder():
    stages = 8
    resistances = [1e3 * (1 + 0.3 * i) for i in range(stages)]
    capacitances = [1e-9 / (1 + 0.5 * i) for i in range(stages)]
    circuit, spec = build_rc_ladder(stages, resistances, capacitances)
    expected = rc_ladder_denominator_coefficients(resistances, capacitances)
    reference = generate_reference(circuit, spec)
    print("RC ladder converged:", reference.converged)
    coeffs = reference.coefficients("denominator")
    d0 = float(coeffs[0])
    for i, e in enumerate(expected):
        got = float(coeffs[i]) / d0 if i < len(coeffs) else 0.0
        rel = abs(got - e) / abs(e)
        print(f"  d{i}: expected {e:.6e} got {got:.6e} rel {rel:.2e}")
    # AC check
    h = reference.transfer_function()
    f = 1e5
    val = h.evaluate(2j * math.pi * f)
    sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
    direct = sampler.transfer_value(2j * math.pi * f)
    print("  H(j2pi 1e5): interp", val, "direct", direct)


def check_ota():
    circuit, spec = build_positive_feedback_ota()
    interp = interpolate_network_function(circuit, spec)
    den = interp.denominator
    print("OTA degree bound:", den.num_points - 1, "region:", den.region)
    print("  normalized coefficients (unscaled):")
    for i, v in enumerate(den.normalized_complex()):
        print(f"   s^{i}: {v:.4e}")
    scaled = interpolate_network_function(circuit, spec,
                                          factors=ScaleFactors(frequency=1e9))
    print("  scaled f=1e9 region:", scaled.denominator.region)
    reference = generate_reference(circuit, spec)
    print("  adaptive:", reference.summary())


def check_ua741():
    circuit, spec = build_ua741()
    print("uA741 elements:", len(circuit), "nodes:", len(circuit.nodes))
    start = time.perf_counter()
    reference = generate_reference(circuit, spec)
    elapsed = time.perf_counter() - start
    print("  adaptive done in", round(elapsed, 2), "s")
    print(reference.summary())
    den = reference.denominator
    for it in den.iterations:
        print(f"   iter {it.index} dir={it.direction} K={it.num_points} "
              f"region=[{it.region_start},{it.region_end}] new={len(it.new_indices)} "
              f"t={it.elapsed_seconds:.2f}s factors=({it.factors})")
    coeffs = reference.coefficients("denominator")
    for i in (0, 1, 5, 10, 20, 30, 40):
        if i < len(coeffs):
            print(f"   d{i} =", coeffs[i].format())
    # Bode check against direct AC
    sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
    h = reference.transfer_function()
    for f in (1.0, 1e3, 1e6):
        interp = h.evaluate(2j * math.pi * f)
        direct = sampler.transfer_value(2j * math.pi * f)
        print(f"   f={f:g}: interp {abs(interp):.4e} direct {abs(direct):.4e}")


if __name__ == "__main__":
    check_rc_ladder()
    check_ota()
    check_ua741()
