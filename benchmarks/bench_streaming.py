"""Streaming 10^6-sample Monte Carlo: O(F) memory, bit parity, IS yield.

A production yield run wants millions of tolerance samples, but a
materialized ensemble is O(M x F) — the 10^6-sample uA741 run would hold a
~122 MiB complex response block (plus magnitude scratch) that exists only
to be reduced.  This bench drives
:func:`repro.reporting.experiments.run_streaming_ensemble`: the same
ensemble folded shard by shard into O(F) accumulators
(``store_responses=False``), with the response buffer dropped after every
shard.

Asserted here (the ISSUE 10 acceptance criteria):

* the streaming fold's tracemalloc peak stays under a **hard ceiling**
  (256 MiB on the full run) and, at full scale, below the (M, F) response
  block a materialized run would hold on top of the same solver scratch;
  the up-front sample draw is excluded — it is O(M·axes) input, not part
  of the estimator;
* sequential streaming and the supervised multiprocess driver produce
  **bit-identical** accumulator state on the same draw prefix — sums,
  extrema and histogram all match exactly;
* the screening-aimed **importance-sampled** failure estimate agrees with
  plain Monte Carlo within 4 combined standard errors on a
  moderate-failure spec, with a non-degenerate failure-region ESS.

``REPRO_BENCH_REDUCED=1`` (CI smoke) shrinks the ensemble to 20 000 x 8
with a 64 MiB ceiling; every gate still runs end to end.

Run standalone for the full experiment table::

    PYTHONPATH=src python benchmarks/bench_streaming.py
"""

import os

import pytest

from repro.reporting.experiments import run_streaming_ensemble

_REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")


def _ensemble_shape():
    # (samples, points, shard_size, ceiling_mb, yield_samples)
    if _REDUCED:
        return (20_000, 8, 1024, 96.0, 800)
    return (1_000_000, 8, 1024, 256.0, 2000)


def _check(result, full):
    assert result.within_ceiling, result.describe()
    assert result.bit_identical, result.describe()
    assert result.is_consistent, result.describe()
    assert not result.importance_degenerate, result.describe()
    if full:
        assert result.num_samples == 1_000_000, result.describe()
        # The peak is solver scratch — O(chunk·n²), independent of M — so
        # only at full scale is it meaningfully below the (M, F) response
        # block a materialized run would hold *on top of* that scratch.
        assert result.traced_peak_mb < result.materialized_mb, \
            result.describe()


@pytest.mark.benchmark(group="streaming")
def test_streaming_ua741_ensemble(benchmark):
    """10^6-sample uA741 streaming ensemble: memory ceiling + IS parity."""
    samples, points, shard, ceiling, yields = _ensemble_shape()
    result = benchmark.pedantic(
        lambda: run_streaming_ensemble(num_samples=samples,
                                       num_points=points,
                                       shard_size=shard,
                                       memory_ceiling_mb=ceiling,
                                       yield_samples=yields),
        rounds=1, iterations=1)
    _check(result, full=not _REDUCED)


def main():
    samples, points, shard, ceiling, yields = _ensemble_shape()
    print(f"Streaming ensemble ({samples} samples x {points} points, uA741 "
          f"+/-5% passives): O(F) accumulators, {ceiling:.0f} MiB ceiling, "
          "importance-sampled yield cross-check")
    result = run_streaming_ensemble(num_samples=samples, num_points=points,
                                    shard_size=shard,
                                    memory_ceiling_mb=ceiling,
                                    yield_samples=yields)
    print(result.describe())
    _check(result, full=not _REDUCED)


if __name__ == "__main__":
    main()
