"""E6/E7 — ablations of the scale-factor strategy (Sections 3.1 and 3.2).

* E6: a fixed grid of scale factors (Sec. 3.1's "relatively large set of scale
  factors") either needs more interpolations than the adaptive choice or fails
  to cover every coefficient.
* E7: simultaneous frequency + conductance scaling keeps the individual
  factors far smaller than pushing the whole ratio into a single factor
  (Sec. 3.2 warns single factors beyond ~1e18 degrade the sample accuracy).
"""

import pytest

from repro.reporting.experiments import run_scaling_ablation


@pytest.fixture(scope="module")
def ablation_result():
    return run_scaling_ablation()


@pytest.mark.benchmark(group="scaling-ablation")
def test_simultaneous_vs_single_factor(benchmark, ablation_result):
    result = benchmark(lambda: ablation_result)
    assert result.simultaneous.converged
    # E7: the simultaneous strategy needs smaller individual factors.
    assert result.simultaneous_max_factor < result.single_factor_max_factor
    # And stays far away from the 1e18 danger zone on this circuit.
    assert result.simultaneous_max_factor < 1e15


@pytest.mark.benchmark(group="scaling-ablation")
def test_adaptive_vs_fixed_grid(benchmark, ablation_result):
    result = benchmark(lambda: ablation_result)
    adaptive_interpolations = result.simultaneous.iteration_count()
    # E6: the fixed grid needs more interpolations and/or leaves gaps.
    assert (result.fixed_grid_interpolations > adaptive_interpolations
            or result.fixed_grid_covered < result.degree_bound + 1)
