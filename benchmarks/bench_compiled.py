"""Compiled coefficient-tensor serving vs the matrix ensemble engine.

The compiled-model layer (:mod:`repro.symbolic.compile`) lowers the µA741
macro's symbolic transfer function once into per-power coefficient tensors
over the twelve tolerance axes; :func:`repro.montecarlo.compiled_ensemble_sweep`
then serves whole ``(M samples × F frequencies)`` ensembles as numpy
broadcasts with **zero matrix solves**.

Asserted here (the PR 8 acceptance criteria) on the 256-sample × 200-point
µA741-macro ensemble (±5 % on the twelve toleranced axes):

* the warm compiled serve runs at least **20x** faster than the matrix
  engine's LAPACK arm over identical sampled values (measured ~25-30x),
* its responses deviate from the matrix arm by at most **1e-9** relative to
  the response scale,
* the whole workload — cold call plus every warm repeat through one
  :class:`~repro.engine.session.AnalysisSession` — performs exactly **one**
  symbolic → tensor compilation (the compile-once discipline).

``REPRO_BENCH_REDUCED=1`` (CI smoke) shrinks the ensemble to 24 × 40; the
parity and compile-once assertions still run end to end, only the 20x floor
(a full-size wall-clock claim) is skipped.

Run standalone for the full experiment table::

    PYTHONPATH=src python benchmarks/bench_compiled.py
"""

import os

import pytest

from repro.reporting.experiments import run_compiled_model

_REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")


def _ensemble_shape():
    return (24, 40) if _REDUCED else (256, 200)


def _check(result, full):
    assert result.relative_deviation <= 1e-9, result.describe()
    assert result.session_compiles == 1, result.describe()
    if full:
        assert result.num_samples == 256 and result.num_frequencies == 200
        assert result.speedup >= 20.0, result.describe()


@pytest.mark.benchmark(group="compiled")
def test_compiled_model_ua741_macro(benchmark):
    """256×200 µA741-macro ensemble: >= 20x over LAPACK, <= 1e-9 deviation."""
    samples, points = _ensemble_shape()
    result = benchmark.pedantic(
        lambda: run_compiled_model(num_samples=samples, num_points=points,
                                   repeats=1),
        rounds=1, iterations=1)
    _check(result, full=not _REDUCED)


def main():
    samples, points = _ensemble_shape()
    print(f"Compiled transfer model ({samples} samples x {points} points, "
          "uA741 macro +/-5% on 12 axes): tensor serving vs matrix solves")
    result = run_compiled_model(num_samples=samples, num_points=points)
    print(result.describe())
    _check(result, full=not _REDUCED)


if __name__ == "__main__":
    main()
