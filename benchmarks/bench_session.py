"""Chained analysis workload through the AnalysisSession cache vs standalone.

A realistic multi-stage pipeline touches the *same* circuit over and over:
AC verification (Bode), a stability check, element-influence screening, SBG
reduction, interpolation-based reference generation, the Fig. 2 overlay, and
finally a reporting pass that re-queries the curves and rankings to render
them.  Run stage by stage — each a standalone consumer, the way separate
tools call the library — everything is rebuilt from scratch at every stage;
run against one :class:`repro.engine.session.AnalysisSession`, formulations,
sweep factorizations, screening results and the numerical reference are each
built exactly once and shared (:func:`repro.reporting.experiments.run_session_workload`).

Asserted here (the PR 3 acceptance criteria):

* the chained µA741 workload runs at least 2x faster through the session
  (measured ~2.5x),
* the session-backed outputs deviate from the standalone outputs by exactly
  0.0 — the session is a pure cache, every stage answer is bit-identical.

Run standalone for the full experiment table::

    PYTHONPATH=src python benchmarks/bench_session.py
"""

import pytest

from repro.reporting.experiments import run_session_workload


def _check(result):
    assert result.speedup >= 2.0, result.describe()
    assert result.max_relative_deviation == 0.0, result.describe()
    assert result.cache_hits > 0, result.describe()


@pytest.mark.benchmark(group="session")
def test_session_chained_ua741(benchmark, ua741):
    """Chained µA741 workload: >= 2x wall-clock, zero output deviation."""
    circuit, spec = ua741
    result = benchmark(lambda: run_session_workload(
        circuits=[("ua741", (circuit, spec))],
    )[0])
    _check(result)


def main():
    print("chained workload (Bode -> margins -> screening -> SBG -> "
          "interpolation -> Fig.2 -> report), standalone vs AnalysisSession")
    for result in run_session_workload():
        print(result.describe())
        _check(result)


if __name__ == "__main__":
    main()
