"""Post-layout scaling: dense vs ordered-sparse sweeps on generator circuits.

The paper's circuits stop at 43 unknowns; extracted post-layout networks
reach 10³–10⁴.  This bench sweeps the three generator families
(:mod:`repro.circuits.generators` — RC mesh, clock tree, coupled bus) across
sizes and times the dense batched path against the sparse path with
fill-reducing ordering, recording the crossover dimension and the symbolic
fill-in with / without the ordering.

Asserted here (the PR 6 acceptance criteria):

* dense and sparse solutions agree within **1e-8** (per-frequency deviation
  normalized by the dense solution norm — measured ~1e-14) at every size,
* the fill-reducing order never produces more fill than the natural order
  (on trees AMD is exact: zero fill),
* full mode only: the ordered sparse path is at least **3x** faster than the
  dense path on the n=1026 RC mesh (measured ~20x), and the mesh crossover
  sits at or below n=258.

``REPRO_BENCH_REDUCED=1`` (the CI smoke step) caps the curve at ~258
unknowns — the parity and fill assertions still run end to end, only the
full-size wall-clock floors are skipped.

Run standalone for the scaling table::

    PYTHONPATH=src python benchmarks/bench_scaling.py
"""

import os

import pytest

from repro.reporting.experiments import run_scaling_curve

_REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

#: Agreement floor between the dense and sparse dispatch paths.
_PARITY = 1e-8


def _check(result, full):
    assert result.max_deviation <= _PARITY, result.describe()
    for point in result.points:
        assert point.ordered_fill <= point.natural_fill, point.describe()
    for point in result.family_points("tree"):
        # AMD eliminates leaves first: a tree factors with zero fill.
        assert point.ordered_fill == 0, point.describe()
    if full:
        largest_mesh = result.family_points("mesh")[-1]
        assert largest_mesh.dimension >= 1024, largest_mesh.describe()
        assert largest_mesh.speedup >= 3.0, largest_mesh.describe()
        crossover = result.crossover_dimension("mesh")
        assert crossover is not None and crossover <= 258, result.describe()


@pytest.mark.benchmark(group="scaling")
def test_generator_scaling_curve(benchmark):
    """Generator-family scaling: parity <= 1e-8, ordered fill never worse."""
    result = benchmark.pedantic(
        lambda: run_scaling_curve(reduced=_REDUCED), rounds=1, iterations=1)
    _check(result, full=not _REDUCED)


def main():
    mode = "reduced (n <= 258)" if _REDUCED else "full (n up to 1026)"
    print(f"Generator-circuit scaling, {mode}: dense batched sweep vs "
          "sparse refactorization with fill-reducing ordering")
    result = run_scaling_curve(reduced=_REDUCED)
    print(result.describe())
    _check(result, full=not _REDUCED)


if __name__ == "__main__":
    main()
