"""E5 — Section 3.3 CPU-time claim: Eq. 17 deflation makes later iterations cheaper.

Paper claim: on a SPARCstation-10 the three µA741 interpolations cost
3.9 s / 2.3 s / 0.9 s when the problem-size reduction of Eq. 17 is applied
(versus 3.9 s each without it).  Absolute times are machine- and
implementation-specific; the reproducible shape is (a) the total number of
interpolation points (hence LU factorizations) drops when deflation is on and
(b) the per-iteration point count never increases and ends much smaller than
it starts.
"""

import dataclasses

import pytest

from repro.interpolation.adaptive import AdaptiveOptions, AdaptiveScalingInterpolator
from repro.nodal.sampler import NetworkFunctionSampler
from repro.reporting.experiments import run_cpu_reduction


def _run(circuit, spec, deflation):
    sampler = NetworkFunctionSampler(circuit, spec)
    options = AdaptiveOptions(deflation=deflation)
    result = AdaptiveScalingInterpolator(sampler, "denominator", options).run()
    return result, sampler.factorization_count


@pytest.mark.benchmark(group="cpu-reduction")
def test_with_reduction(benchmark, ua741_admittance):
    circuit, spec = ua741_admittance
    result, factorizations = benchmark(lambda: _run(circuit, spec, True))
    assert result.converged
    points = [record.num_points for record in result.iterations]
    # Monotone non-increasing cost per iteration, with a real drop at the end.
    assert all(points[i + 1] <= points[i] for i in range(len(points) - 1))
    assert points[-1] < points[0]


@pytest.mark.benchmark(group="cpu-reduction")
def test_without_reduction(benchmark, ua741_admittance):
    circuit, spec = ua741_admittance
    result, factorizations = benchmark(lambda: _run(circuit, spec, False))
    assert result.converged
    points = [record.num_points for record in result.iterations]
    # Without Eq. 17 every interpolation uses the full point count.
    assert len(set(points)) == 1


@pytest.mark.benchmark(group="cpu-reduction")
def test_reduction_saves_total_work(benchmark):
    result = benchmark(run_cpu_reduction)
    with_points, without_points = result.total_points()
    assert with_points < without_points
    assert result.reduction_ratio() > 0.05
