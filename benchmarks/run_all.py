"""Run every benchmark and append a perf-trajectory snapshot to BENCH.json.

Two layers:

* **Quantitative workloads** — the four engine A/B experiments
  (batched sweep, rank-1 screening, analysis session, symbolic kernel) run
  through their :mod:`repro.reporting.experiments` runners and land in the
  snapshot as ``{workload, circuit, speedup, max_relative_deviation,
  seconds}`` records.  These are the library's perf trajectory: each PR's
  snapshot shows whether the speedups its benches assert still hold.
* **Scripted benches** — every other ``bench_*.py`` with a ``main()`` runs as
  a smoke check (pass/fail + wall time), so a regression in a
  paper-reproduction bench shows up here even between full pytest runs.

Modes::

    PYTHONPATH=src python benchmarks/run_all.py            # full trajectory
    PYTHONPATH=src python benchmarks/run_all.py --smoke    # CI: symbolic
                                                           # kernel reduced

``--smoke`` sets ``REPRO_BENCH_REDUCED=1`` and runs only the reduced
symbolic-kernel, Monte Carlo, compiled-model and sparse-scaling workloads —
seconds instead of minutes, equivalence still asserted — so CI keeps the
trajectory file fresh without paying for the full suite.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
BENCH_JSON = BENCH_DIR.parent / "BENCH.json"


def _record(workload, circuit, workload_seconds, speedup, deviation,
            extra=None):
    record = {
        "workload": workload,
        "circuit": circuit,
        # Wall time of the whole workload run (shared by its circuits) —
        # per-circuit timings live in the speedup's underlying experiment.
        "workload_seconds": round(workload_seconds, 4),
        "speedup": round(speedup, 2),
        "max_relative_deviation": deviation,
    }
    if extra:
        record.update(extra)
    return record


def run_quantitative(smoke=False):
    """The engine A/B experiments; returns snapshot records."""
    from repro.reporting.experiments import (
        run_batch_sweep,
        run_compiled_model,
        run_montecarlo_ensemble,
        run_parallel_ensemble,
        run_scaling_curve,
        run_sensitivity_screening,
        run_session_workload,
        run_symbolic_kernel,
    )

    records = []

    start = time.perf_counter()
    kernel = run_symbolic_kernel(reduced=smoke)
    records.append(_record(
        "symbolic_kernel", kernel.circuit_name,
        time.perf_counter() - start, kernel.speedup,
        kernel.max_coefficient_deviation,
        {"multisets_identical": kernel.multisets_identical,
         "minor_hit_rate": round(kernel.minor_hit_rate, 3),
         "terms": kernel.numerator_terms + kernel.denominator_terms}))
    print(kernel.describe())
    # The smoke run doubles as the CI equivalence gate (the bench's own
    # assertions, minus the full-size 5x floor), so CI runs the workload once.
    assert kernel.multisets_identical, kernel.describe()
    assert kernel.max_coefficient_deviation <= 1e-9, kernel.describe()

    # Monte Carlo ensemble: reduced shape in smoke mode, with the exact-arm /
    # batch-invariance equivalence gates asserted either way.
    samples, points = (24, 40) if smoke else (256, 200)
    start = time.perf_counter()
    for ensemble in run_montecarlo_ensemble(num_samples=samples,
                                            num_points=points,
                                            repeats=1 if smoke else 3):
        records.append(_record(
            "montecarlo_ensemble", ensemble.circuit_name,
            time.perf_counter() - start, ensemble.speedup,
            ensemble.exact_deviation,
            {"samples": ensemble.num_samples,
             "points": ensemble.num_frequencies,
             "tolerance_axes": ensemble.num_axes,
             "exact_arm_speedup": round(ensemble.exact_arm_speedup, 2),
             "lapack_relative_deviation":
                 ensemble.lapack_relative_deviation,
             "batch_invariant": ensemble.batch_invariant}))
        print(ensemble.describe())
        assert ensemble.exact_deviation == 0.0, ensemble.describe()
        assert ensemble.batch_invariant, ensemble.describe()
        if not smoke:
            assert ensemble.speedup >= 5.0, ensemble.describe()

    # Supervised parallel ensemble: the multiprocess driver vs the
    # single-process resilient run, bit-parity gates asserted either way;
    # the wall-clock floor only applies on full runs with >= 4 CPUs.
    parallel_shape = (2048, 8, 256) if smoke else (100_000, 8, 1024)
    start = time.perf_counter()
    parallel = run_parallel_ensemble(num_samples=parallel_shape[0],
                                     num_points=parallel_shape[1],
                                     shard_size=parallel_shape[2])
    records.append(_record(
        "parallel_ensemble", parallel.circuit_name,
        time.perf_counter() - start, parallel.speedup,
        0.0 if parallel.bit_identical else float("inf"),
        {"samples": parallel.num_samples,
         "points": parallel.num_frequencies,
         "shard_size": parallel.shard_size,
         "workers": parallel.workers,
         "single_sample_points_per_second":
             round(parallel.single_throughput, 1),
         "parallel_sample_points_per_second":
             round(parallel.parallel_throughput, 1),
         "redispatches": parallel.redispatches,
         "quarantined": parallel.quarantined,
         "bit_identical": parallel.bit_identical}))
    print(parallel.describe())
    assert parallel.bit_identical, parallel.describe()
    assert parallel.redispatches == 0, parallel.describe()
    if not smoke and (os.cpu_count() or 1) >= 4:
        assert parallel.speedup >= 0.7, parallel.describe()

    # Streaming ensemble: O(F)-memory estimators under a hard tracemalloc
    # ceiling, multiprocess bit parity and the importance-sampled yield
    # cross-check — all gates asserted in smoke and full mode alike.
    from repro.reporting.experiments import run_streaming_ensemble

    streaming_shape = ((20_000, 8, 1024, 96.0, 800) if smoke
                       else (1_000_000, 8, 1024, 256.0, 2000))
    start = time.perf_counter()
    streaming = run_streaming_ensemble(num_samples=streaming_shape[0],
                                       num_points=streaming_shape[1],
                                       shard_size=streaming_shape[2],
                                       memory_ceiling_mb=streaming_shape[3],
                                       yield_samples=streaming_shape[4])
    records.append(_record(
        "streaming_ensemble", streaming.circuit_name,
        time.perf_counter() - start,
        streaming.materialized_mb / max(streaming.traced_peak_mb, 1e-9),
        0.0 if streaming.bit_identical else float("inf"),
        {"samples": streaming.num_samples,
         "points": streaming.num_frequencies,
         "shard_size": streaming.shard_size,
         "sample_points_per_second": round(streaming.throughput, 1),
         "traced_peak_mb": round(streaming.traced_peak_mb, 2),
         "materialized_mb": round(streaming.materialized_mb, 2),
         "rss_peak_mb": round(streaming.rss_peak_mb, 1),
         "memory_ceiling_mb": streaming.memory_ceiling_mb,
         "bit_identical": streaming.bit_identical,
         "plain_failure": streaming.plain_failure,
         "weighted_failure": streaming.weighted_failure,
         "failure_ess": round(streaming.failure_ess, 1),
         "is_consistent": streaming.is_consistent}))
    print(streaming.describe())
    assert streaming.within_ceiling, streaming.describe()
    assert streaming.bit_identical, streaming.describe()
    assert streaming.is_consistent, streaming.describe()

    # Compiled transfer model: tensor serving vs the matrix engine over the
    # same draws, with the parity and compile-once gates asserted either way.
    start = time.perf_counter()
    compiled = run_compiled_model(num_samples=samples, num_points=points,
                                  repeats=1 if smoke else 3)
    records.append(_record(
        "compiled_model", compiled.circuit_name,
        time.perf_counter() - start, compiled.speedup,
        compiled.relative_deviation,
        {"samples": compiled.num_samples,
         "points": compiled.num_frequencies,
         "tolerance_axes": compiled.num_axes,
         "terms": compiled.num_terms,
         "groups": compiled.num_groups,
         "compile_seconds": round(compiled.compile_seconds, 3),
         "serve_seconds": round(compiled.serve_seconds, 4),
         "session_compiles": compiled.session_compiles}))
    print(compiled.describe())
    assert compiled.relative_deviation <= 1e-9, compiled.describe()
    assert compiled.session_compiles == 1, compiled.describe()
    if not smoke:
        assert compiled.speedup >= 20.0, compiled.describe()

    # Generator-circuit scaling: dense vs ordered-sparse sweep timings with
    # the per-family crossover dimension and fill-in ablation in the record.
    start = time.perf_counter()
    scaling = run_scaling_curve(reduced=smoke)
    scaling_seconds = time.perf_counter() - start
    print(scaling.describe())
    assert scaling.max_deviation <= 1e-8, scaling.describe()
    for family in sorted({point.family for point in scaling.points}):
        curve = scaling.family_points(family)
        largest = curve[-1]
        records.append(_record(
            "sparse_scaling", family, scaling_seconds, largest.speedup,
            scaling.max_deviation,
            {"crossover_dimension": scaling.crossover_dimension(family),
             "curve": [{"dimension": point.dimension,
                        "nnz": point.nnz,
                        "dense_seconds": round(point.dense_seconds, 4),
                        "sparse_seconds": round(point.sparse_seconds, 4),
                        "natural_fill": point.natural_fill,
                        "ordered_fill": point.ordered_fill}
                       for point in curve]}))
        assert all(point.ordered_fill <= point.natural_fill
                   for point in curve), scaling.describe()
        if not smoke and family == "mesh":
            assert largest.dimension >= 1024 and largest.speedup >= 3.0, (
                scaling.describe())
    if smoke:
        return records

    for workload, runner in (("batch_sweep", run_batch_sweep),
                             ("sensitivity_screening",
                              run_sensitivity_screening),
                             ("session_workload", run_session_workload)):
        start = time.perf_counter()
        results = runner()
        elapsed = time.perf_counter() - start  # whole-workload wall time
        for result in results:
            records.append(_record(
                workload, result.circuit_name, elapsed, result.speedup,
                result.max_relative_deviation))
            print(result.describe())

    return records


def run_scripted():
    """Smoke-run every other bench with a main(); returns snapshot records."""
    import importlib

    records = []
    sys.path.insert(0, str(BENCH_DIR))
    skip = {"run_all", "conftest"}
    quantitative = {"bench_batch_sweep", "bench_sensitivity", "bench_session",
                    "bench_sdg", "bench_montecarlo", "bench_scaling",
                    "bench_compiled", "bench_parallel", "bench_streaming"}
    for path in sorted(BENCH_DIR.glob("bench_*.py")):
        module_name = path.stem
        if module_name in skip or module_name in quantitative:
            continue
        print(f"== {module_name}")
        start = time.perf_counter()
        try:  # import AND run recorded, not fatal to the trajectory
            module = importlib.import_module(module_name)
            main = getattr(module, "main", None)
            if main is None:
                continue
            main()
            status = "ok"
        except Exception as exc:
            status = f"failed: {type(exc).__name__}: {exc}"
        records.append({
            "workload": module_name,
            "workload_seconds": round(time.perf_counter() - start, 4),
            "status": status,
        })
    return records


def append_snapshot(records, mode):
    """Append one snapshot to BENCH.json (creating it when absent)."""
    trajectory = {"snapshots": []}
    if BENCH_JSON.exists():
        try:
            trajectory = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            # Never overwrite an unreadable trajectory: set it aside so the
            # accumulated history stays recoverable.
            backup = BENCH_JSON.with_suffix(".json.corrupt")
            BENCH_JSON.rename(backup)
            print(f"warning: {BENCH_JSON} was unreadable; moved to {backup}")
    trajectory.setdefault("snapshots", []).append({
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"),
        "mode": mode,
        "results": records,
    })
    BENCH_JSON.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"wrote {BENCH_JSON} ({len(trajectory['snapshots'])} snapshots)")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: reduced symbolic-kernel workload only")
    parser.add_argument("--no-scripted", action="store_true",
                        help="skip the scripted paper-reproduction benches")
    args = parser.parse_args(argv)

    if args.smoke:
        os.environ["REPRO_BENCH_REDUCED"] = "1"
    records = run_quantitative(smoke=args.smoke)
    if not args.smoke and not args.no_scripted:
        records.extend(run_scripted())
    append_snapshot(records, "smoke" if args.smoke else "full")


if __name__ == "__main__":
    main()
