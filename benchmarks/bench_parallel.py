"""Supervised multiprocess ensemble driver vs the single-process run.

A production tolerance run is provisioned in ensemble sample·frequency
points per second.  This bench evaluates the 10^5-sample µA741 ensemble
(±5 % on the discrete passives, 8 frequency points — 800k solves) twice
over identical up-front values with quarantine on: sequentially in-process
(``workers=1``) and through the supervised multiprocess driver
(:func:`repro.montecarlo.parallel_ensemble_sweep`).

Asserted here (the ISSUE 9 acceptance criteria):

* the multiprocess arm is **bit-identical** to the single-process run —
  responses, quarantined indices and the fixed-shard-order statistics
  stream all match exactly, on the full production shape;
* a clean run needs **zero shard re-dispatches** — supervision is pure
  observation until something actually fails;
* on a box with at least 4 CPUs the parallel arm must not run slower than
  **0.7x** single-process (the driver is allowed its supervision overhead,
  never a collapse).  Single-core boxes — like CI containers — skip the
  wall-clock floor: there is nothing to parallelize over, and the parity
  gates are the contract that matters.

``REPRO_BENCH_REDUCED=1`` (CI smoke) shrinks the ensemble to 2 048 x 8;
every equivalence gate still runs end to end across real worker processes.

Run standalone for the full experiment table::

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

import os

import pytest

from repro.reporting.experiments import run_parallel_ensemble

_REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")


def _ensemble_shape():
    # (samples, points, shard_size)
    return (2048, 8, 256) if _REDUCED else (100_000, 8, 1024)


def _check(result, full):
    assert result.bit_identical, result.describe()
    assert result.redispatches == 0, result.describe()
    if full:
        assert result.num_samples == 100_000, result.describe()
        if (os.cpu_count() or 1) >= 4:
            assert result.speedup >= 0.7, result.describe()


@pytest.mark.benchmark(group="parallel")
def test_parallel_ua741_ensemble(benchmark):
    """10^5-sample µA741 ensemble: multiprocess bit parity + throughput."""
    samples, points, shard_size = _ensemble_shape()
    result = benchmark.pedantic(
        lambda: run_parallel_ensemble(num_samples=samples,
                                      num_points=points,
                                      shard_size=shard_size),
        rounds=1, iterations=1)
    _check(result, full=not _REDUCED)


def main():
    samples, points, shard_size = _ensemble_shape()
    print(f"Supervised parallel ensemble ({samples} samples x {points} "
          "points, uA741 +/-5% passives): multiprocess driver vs "
          "single-process")
    result = run_parallel_ensemble(num_samples=samples, num_points=points,
                                   shard_size=shard_size)
    print(result.describe())
    _check(result, full=not _REDUCED)


if __name__ == "__main__":
    main()
