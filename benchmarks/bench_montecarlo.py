"""Vectorized Monte Carlo ensemble engine vs the rebuild-per-sample baseline.

A tolerance analysis evaluates M perturbed circuits over F frequencies.  The
pre-engine way is M independent rebuilds: copy the circuit, replace the
toleranced element values, rebuild the MNA system and run a production
:class:`~repro.analysis.ac.ACAnalysis` sweep — per sample.  The ensemble
engine (:func:`repro.montecarlo.ensemble_sweep`) evaluates the whole
parameter space in stacked chunked solves over the value program's
vectorized re-stamping instead.

Asserted here (the PR 5 acceptance criteria) on the 256-sample × 200-point
µA741 ensemble (±5 % on the discrete passives):

* the vectorized engine runs at least **5x** faster than the
  rebuild-per-sample baseline (measured ~6-8x with the LAPACK solver arm),
* the engine's ``solver="lu"`` arm — same kernels as the baseline, assembly
  replayed by the :class:`~repro.montecarlo.program.ValueProgram` — deviates
  from the rebuild path by **exactly 0.0**: every per-sample output is
  bit-identical, so the vectorization is a pure reorganization of the
  baseline's arithmetic (the PR 1 parity discipline on a new axis),
* the LAPACK arm is **batch-invariant**: solving the ensemble stacked or one
  sample at a time returns identical bits, and it stays within 1e-9 of the
  hand-rolled kernels relative to the response scale.

``REPRO_BENCH_REDUCED=1`` (CI smoke) shrinks the ensemble to 24 × 40; the
equivalence assertions still run end to end, only the 5x floor (a full-size
wall-clock claim) is skipped.

Run standalone for the full experiment table::

    PYTHONPATH=src python benchmarks/bench_montecarlo.py
"""

import os

import pytest

from repro.reporting.experiments import run_montecarlo_ensemble

_REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")


def _ensemble_shape():
    return (24, 40) if _REDUCED else (256, 200)


def _check(result, full):
    assert result.exact_deviation == 0.0, result.describe()
    assert result.batch_invariant, result.describe()
    assert result.lapack_relative_deviation <= 1e-9, result.describe()
    if full:
        assert result.num_samples == 256 and result.num_frequencies == 200
        assert result.speedup >= 5.0, result.describe()


@pytest.mark.benchmark(group="montecarlo")
def test_montecarlo_ua741_ensemble(benchmark):
    """256×200 µA741 ensemble: >= 5x, exact-arm deviation exactly 0.0."""
    samples, points = _ensemble_shape()
    result = benchmark.pedantic(
        lambda: run_montecarlo_ensemble(num_samples=samples,
                                        num_points=points, repeats=1)[0],
        rounds=1, iterations=1)
    _check(result, full=not _REDUCED)


def main():
    samples, points = _ensemble_shape()
    print(f"Monte Carlo ensemble ({samples} samples x {points} points, "
          "uA741 +/-5% passives): vectorized engine vs rebuild-per-sample")
    for result in run_montecarlo_ensemble(num_samples=samples,
                                          num_points=points):
        print(result.describe())
        _check(result, full=not _REDUCED)


if __name__ == "__main__":
    main()
