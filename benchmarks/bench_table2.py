"""E2 — Table 2: µA741 denominator, first + second adaptive interpolations.

Paper claim: the first interpolation (mean-value scale factors) yields a valid
region covering the low-order coefficients; the Eq. 13-14 update moves the
second interpolation's valid region so that it starts where the first one
ended, with minimal overlap.
"""

import pytest

from repro.interpolation.adaptive import AdaptiveOptions, AdaptiveScalingInterpolator
from repro.nodal.sampler import NetworkFunctionSampler


@pytest.mark.benchmark(group="table2")
def test_table2_first_two_interpolations(benchmark, ua741_admittance):
    circuit, spec = ua741_admittance

    def first_two():
        sampler = NetworkFunctionSampler(circuit, spec)
        options = AdaptiveOptions(max_iterations=2)
        return AdaptiveScalingInterpolator(sampler, "denominator", options).run()

    result = benchmark(first_two)
    iterations = result.iterations
    assert len(iterations) == 2
    first, second = iterations
    # Both interpolations produced a valid region.
    assert first.region_start is not None and second.region_start is not None
    # The second region extends to strictly higher powers of s ...
    assert second.region_end > first.region_end
    # ... and starts no earlier than where the first region ends minus a small
    # overlap (the Eq. 14 objective of minimal overlap).
    overlap = first.region_end - second.region_start + 1
    assert overlap <= max(8, first.region_end - first.region_start)
    # The scale-factor ratio per power of s increased (that is what shifts the
    # window towards higher powers).
    assert (second.factors.per_power_ratio > first.factors.per_power_ratio)


@pytest.mark.benchmark(group="table2")
def test_table2_first_region_covers_low_orders(benchmark, ua741_admittance):
    circuit, spec = ua741_admittance

    def first_only():
        sampler = NetworkFunctionSampler(circuit, spec)
        options = AdaptiveOptions(max_iterations=1)
        return AdaptiveScalingInterpolator(sampler, "denominator", options).run()

    result = benchmark(first_only)
    record = result.iterations[0]
    degree_bound = result.degree_bound
    # Mean-value scaling puts the first valid region at the low-order end and
    # covers a substantial share of the coefficients (the paper gets 0..12 of
    # 0..48).
    assert record.region_start <= 2
    assert record.region_end >= degree_bound // 4
    assert record.region_end < degree_bound
