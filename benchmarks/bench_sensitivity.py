"""Rank-1 update sensitivity screening vs the brute-force rebuild path.

The SBG reduction is driven by an element-influence ranking whose brute-force
computation rebuilds the circuit and runs a full AC sweep twice per candidate
— ``2·E·F`` complete MNA assemblies and factorizations.  The rank-1 engine
factors the *baseline* once per frequency batch and obtains every element's
removal / perturbation response from the cached factors via Sherman–Morrison
in O(n²) per element (:mod:`repro.linalg.rank1`,
:func:`repro.analysis.sensitivity.screen_elements`).

Asserted here (the PR 2 acceptance criteria):

* full-element µA741 screening runs at least 5x faster through the rank-1
  engine than through ``method="rebuild"``,
* the element influence rankings of the two engines are identical, and both
  flag the same elements as singular-on-removal,
* the worst-case relative response deviation between the engines is at most
  1e-9 across all screened elements and frequencies (relative to the
  transfer-function scale ``max(|response|, |baseline|)`` per frequency).

Run standalone for the full experiment table::

    PYTHONPATH=src python benchmarks/bench_sensitivity.py
"""

import numpy as np
import pytest

from repro.analysis.sensitivity import screen_elements
from repro.reporting.experiments import run_sensitivity_screening


@pytest.mark.benchmark(group="sensitivity")
def test_sensitivity_ua741_speedup(benchmark, ua741):
    """Full µA741 screening: >= 5x wall-clock, identical rankings, <= 1e-9."""
    circuit, spec = ua741
    result = benchmark(lambda: run_sensitivity_screening(
        num_frequencies=25,
        circuits=[("ua741", (circuit, spec))],
    )[0])
    assert result.num_elements > 100  # the *full* element set was screened
    assert result.speedup >= 5.0, result.describe()
    assert result.ranking_identical, result.describe()
    assert result.singular_sets_identical, result.describe()
    assert result.max_relative_deviation <= 1e-9, result.describe()


@pytest.mark.benchmark(group="sensitivity")
def test_sensitivity_rank1_cost(benchmark, ua741):
    """The rank-1 engine alone on the full µA741 element set."""
    circuit, spec = ua741
    frequencies = np.logspace(0, 8, 25)
    result = benchmark(lambda: screen_elements(circuit, spec, frequencies,
                                               method="rank1"))
    assert len(result.screenings) > 100


@pytest.mark.benchmark(group="sensitivity")
def test_sensitivity_miller_ota_equivalence(benchmark, miller):
    """Miller OTA: the small-circuit case stays equivalent too."""
    circuit, spec = miller
    result = benchmark(lambda: run_sensitivity_screening(
        num_frequencies=25,
        circuits=[("miller_ota", (circuit, spec))],
        repeats=1,
    )[0])
    assert result.ranking_identical, result.describe()
    assert result.singular_sets_identical, result.describe()
    assert result.max_relative_deviation <= 1e-9, result.describe()


def main():
    print("rank-1 update screening vs rebuild-per-element "
          "(25 log-spaced frequencies, 1 Hz - 100 MHz, full element sets)")
    for result in run_sensitivity_screening(num_frequencies=25):
        print(result.describe())
        assert result.speedup >= 5.0, result.describe()
        assert result.ranking_identical, result.describe()
        assert result.singular_sets_identical, result.describe()
        assert result.max_relative_deviation <= 1e-9, result.describe()


if __name__ == "__main__":
    main()
