"""E1 — Table 1: OTA coefficients, unscaled vs frequency-scaled interpolation.

Paper claim (Table 1a/1b): with interpolation points on the unit circle and no
scaling, only the lowest-order coefficients of the OTA's differential gain are
trustworthy — the rest drown in round-off noise and show non-zero imaginary
parts; with a frequency scale factor of 1e9 the full set of coefficients comes
out above the error level.
"""

import numpy as np
import pytest

from repro.interpolation.basic import interpolate_network_function
from repro.interpolation.scaling import ScaleFactors
from repro.reporting.experiments import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1a_unscaled_interpolation(benchmark, ota):
    """Unscaled interpolation: valid region is a small fraction of the bound."""
    circuit, spec = ota

    result = benchmark(
        lambda: interpolate_network_function(circuit, spec,
                                             factors=ScaleFactors(),
                                             admittance_transform=False))
    denominator = result.denominator
    degree_bound = denominator.num_points - 1
    assert degree_bound == 9
    # Only a few coefficients survive the error level.
    assert denominator.region.width <= degree_bound // 2
    # The tell-tale round-off signature: imaginary residue comparable to the
    # corrupted real parts at the high-order end.
    residues = np.abs(denominator.imaginary_residue())
    corrupted = np.abs(denominator.normalized_complex().real)[degree_bound]
    assert corrupted < 10.0 ** denominator.region.threshold_log10
    assert residues.max() > 0.0


@pytest.mark.benchmark(group="table1")
def test_table1b_frequency_scaled_interpolation(benchmark, ota):
    """With a 1e9 frequency scale factor most coefficients become valid."""
    circuit, spec = ota

    result = benchmark(
        lambda: interpolate_network_function(
            circuit, spec, factors=ScaleFactors(frequency=1e9),
            admittance_transform=False))
    scaled_width = result.denominator.region.width
    unscaled = interpolate_network_function(circuit, spec,
                                            factors=ScaleFactors(),
                                            admittance_transform=False)
    assert scaled_width > unscaled.denominator.region.width
    assert scaled_width >= 8


@pytest.mark.benchmark(group="table1")
def test_table1_full_reproduction_runner(benchmark):
    """The packaged Table 1 runner (builds the circuit too)."""
    result = benchmark(run_table1)
    assert result.scaled_valid_count() > result.unscaled_valid_count()
