"""Shared fixtures for the benchmark / paper-reproduction suite.

Every benchmark regenerates one table or figure of the paper (or an ablation
listed in DESIGN.md).  They use ``pytest-benchmark`` to time the relevant
algorithm and ordinary assertions to check that the *shape* of the paper's
result holds (which method wins, which regions appear, how costs fall); the
absolute numbers are recorded in EXPERIMENTS.md.

``bench_*.py`` files sit outside the default pytest collection pattern, so
name them explicitly.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_*.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.circuits.miller_ota import build_miller_ota
from repro.circuits.ota import build_positive_feedback_ota
from repro.circuits.ua741 import build_ua741
from repro.netlist.transform import to_admittance_form


@pytest.fixture(scope="session")
def ota():
    """Positive-feedback OTA (Fig. 1), already in admittance form."""
    circuit, spec = build_positive_feedback_ota()
    return to_admittance_form(circuit), spec


@pytest.fixture(scope="session")
def ua741():
    """µA741 macro (Tables 2-3, Fig. 2), original MNA-capable circuit + spec."""
    return build_ua741()


@pytest.fixture(scope="session")
def ua741_admittance(ua741):
    """µA741 macro in admittance form (for the interpolation engine)."""
    circuit, spec = ua741
    return to_admittance_form(circuit), spec


@pytest.fixture(scope="session")
def miller():
    """Two-stage Miller OTA used by the SDG benchmark."""
    return build_miller_ota()
