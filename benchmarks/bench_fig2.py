"""E4 — Fig. 2: Bode overlay of interpolated coefficients vs electrical simulator.

Paper claim: the Bode magnitude and phase computed from the adaptively
interpolated µA741 coefficients overlay the curves of a commercial electrical
simulator ("perfect matching").  Our simulator stand-in is the direct MNA AC
sweep; the bench asserts sub-0.1 dB / sub-1° agreement from 1 Hz to 100 MHz.
"""

import numpy as np
import pytest

from repro.analysis.ac import ACAnalysis
from repro.analysis.compare import compare_responses
from repro.interpolation.reference import generate_reference
from repro.reporting.experiments import run_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_reference_generation_cost(benchmark, ua741):
    """Time the reference generation itself (numerator + denominator)."""
    circuit, spec = ua741
    reference = benchmark(lambda: generate_reference(circuit, spec))
    assert reference.converged


@pytest.mark.benchmark(group="fig2")
def test_fig2_bode_overlay(benchmark, ua741):
    """Time the sweep comparison and assert the overlay quality."""
    circuit, spec = ua741
    reference = generate_reference(circuit, spec)
    frequencies = np.logspace(0, 8, 49)
    simulated = ACAnalysis(circuit, spec).frequency_response(frequencies)

    def overlay():
        interpolated = reference.frequency_response(frequencies)
        return compare_responses(frequencies, simulated, interpolated)

    comparison = benchmark(overlay)
    assert comparison.max_magnitude_error_db < 0.1
    assert comparison.max_phase_error_deg < 1.0
    assert comparison.matches()


@pytest.mark.benchmark(group="fig2")
def test_fig2_gain_curve_shape(benchmark):
    """The packaged Fig. 2 runner: ~100 dB at 1 Hz rolling below 0 dB at 100 MHz."""
    result = benchmark(lambda: run_fig2(points_per_decade=3))
    interpolated, simulated = result.magnitude_db()
    assert interpolated[0] > 80.0
    assert interpolated[-1] < 0.0
    assert result.comparison.matches()
