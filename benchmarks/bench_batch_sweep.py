"""E7 — batched frequency-sweep engine vs the per-point sampling path.

The paper's premise is that numerical reference generation must stay cheap
for *large* circuits; the batch engine attacks the dominant cost — one
assemble + LU per interpolation point — by assembling the ``G`` / ``C`` parts
once per sweep and sharing the factorization structure across every point.

Asserted here (the PR 1 acceptance criteria):

* a 200-point µA741 sweep runs at least 2x faster through the batch engine,
* the batched transfer values deviate from the per-point path by at most
  1e-9 relative (they are in fact bit-for-bit identical on the dense path).

Run standalone for the full experiment table::

    PYTHONPATH=src python benchmarks/bench_batch_sweep.py
"""

import numpy as np
import pytest

from repro.circuits.rc_ladder import build_rc_ladder
from repro.nodal.sampler import NetworkFunctionSampler
from repro.reporting.experiments import run_batch_sweep


@pytest.mark.benchmark(group="batch-sweep")
def test_batch_sweep_ua741_speedup(benchmark, ua741_admittance):
    """200-point µA741 sweep: >= 2x wall-clock and <= 1e-9 relative deviation."""
    circuit, spec = ua741_admittance
    result = benchmark(lambda: run_batch_sweep(
        num_points=200,
        circuits=[("ua741", (circuit, spec))],
    )[0])
    assert result.num_points == 200
    assert result.speedup >= 2.0, result.describe()
    assert result.max_relative_deviation <= 1e-9, result.describe()
    assert result.bitwise_identical


@pytest.mark.benchmark(group="batch-sweep")
def test_batch_sweep_pointwise_cost(benchmark, ua741_admittance):
    """Baseline: the original one-matrix-at-a-time path (200 points)."""
    circuit, spec = ua741_admittance
    sampler = NetworkFunctionSampler(circuit, spec)
    points = (2j * np.pi * np.logspace(0, 8, 200)).tolist()
    samples = benchmark(lambda: sampler.sample_many(points, batch=False))
    assert len(samples) == 200


@pytest.mark.benchmark(group="batch-sweep")
def test_batch_sweep_batched_cost(benchmark, ua741_admittance):
    """The batch engine on the same 200-point sweep."""
    circuit, spec = ua741_admittance
    sampler = NetworkFunctionSampler(circuit, spec)
    points = (2j * np.pi * np.logspace(0, 8, 200)).tolist()
    samples = benchmark(lambda: sampler.sample_many(points, batch=True))
    assert len(samples) == 200


@pytest.mark.benchmark(group="batch-sweep")
def test_batch_sweep_rc_ladder_scaling(benchmark):
    """RC ladders of 12 / 24 / 48 stages: the engine never loses, exactly."""
    results = benchmark(lambda: run_batch_sweep(
        num_points=100,
        circuits=[
            (f"rc_ladder_{stages}", build_rc_ladder(stages))
            for stages in (12, 24, 48)
        ],
    ))
    for result in results:
        assert result.max_relative_deviation <= 1e-9, result.describe()
        assert result.bitwise_identical
        assert result.speedup >= 1.0, result.describe()


def main():
    print("batched frequency-sweep engine vs per-point sampling "
          "(200 log-spaced points, 1 Hz - 100 MHz)")
    for result in run_batch_sweep(num_points=200):
        marker = " [bitwise identical]" if result.bitwise_identical else ""
        print(result.describe() + marker)


if __name__ == "__main__":
    main()
