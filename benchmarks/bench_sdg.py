"""E8 — SDG error control (Eq. 3) and the symbolic-kernel speedup.

Two claims are benchmarked here:

* **Error control** (the paper's point): the numerical reference lets SDG
  stop accumulating terms once the generated sum represents the required
  fraction of each coefficient.  Measured on the two-stage Miller OTA — the
  Eq. 3 budget must hold for every coefficient and the term count must
  collapse.

* **Kernel speedup** (PR 4): the µA741-macro symbolic generation + SDG
  epsilon sweep runs ≥ 5x faster on the interned minor-memoized kernel than
  on the pre-kernel path (``kernel="legacy"``: flat cofactor re-expansion and
  scalar per-term valuation), with identical term multisets and coefficient
  values within 1e-9 relative.

Set ``REPRO_BENCH_REDUCED=1`` (the CI smoke mode) to run the kernel A/B on
the Miller OTA instead: wall-clock shrinks to milliseconds, the equivalence
assertions stay, the 5x floor (a large-workload property) is waived.

Run standalone for the experiment table::

    PYTHONPATH=src python benchmarks/bench_sdg.py
"""

import math
import os

import pytest

from repro.interpolation.reference import generate_reference
from repro.reporting.experiments import run_symbolic_kernel
from repro.symbolic.generation import symbolic_network_function
from repro.symbolic.sdg import simplification_during_generation


def _reduced():
    return os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")


def _check_kernel(result, reduced):
    assert result.multisets_identical, result.describe()
    assert result.max_coefficient_deviation <= 1e-9, result.describe()
    if not reduced:
        assert result.speedup >= 5.0, result.describe()


@pytest.fixture(scope="module")
def miller_reference(miller):
    circuit, spec = miller
    return generate_reference(circuit, spec)


@pytest.fixture(scope="module")
def miller_symbolic(miller):
    circuit, spec = miller
    return symbolic_network_function(circuit, spec)


@pytest.mark.benchmark(group="sdg")
def test_sdg_error_control(benchmark, miller, miller_reference, miller_symbolic):
    circuit, spec = miller
    epsilon = 0.01

    result = benchmark(
        lambda: simplification_during_generation(
            circuit, spec, miller_reference, epsilon=epsilon,
            transfer_function=miller_symbolic))
    kept, total = result.total_terms()
    assert kept < total
    assert result.compression() > 0.5
    for report in result.reports:
        if math.isfinite(report.achieved_error):
            assert report.achieved_error <= epsilon * 1.5 + 1e-12


@pytest.mark.benchmark(group="sdg")
def test_sdg_epsilon_sweep_monotone(benchmark, miller, miller_reference,
                                    miller_symbolic):
    circuit, spec = miller

    def sweep():
        kept_counts = []
        for epsilon in (0.1, 0.01, 0.001):
            result = simplification_during_generation(
                circuit, spec, miller_reference, epsilon=epsilon,
                transfer_function=miller_symbolic)
            kept_counts.append(result.total_terms()[0])
        return kept_counts

    kept_counts = benchmark(sweep)
    assert kept_counts[0] <= kept_counts[1] <= kept_counts[2]


@pytest.mark.benchmark(group="sdg")
def test_symbolic_kernel_speedup(benchmark):
    """µA741-macro generation + SDG sweep: ≥ 5x, byte-identical results."""
    reduced = _reduced()
    result = benchmark.pedantic(
        lambda: run_symbolic_kernel(reduced=reduced), rounds=1, iterations=1)
    _check_kernel(result, reduced)


def main():
    reduced = _reduced()
    print("symbolic generation + SDG epsilon sweep, "
          "interned kernel vs legacy path"
          + (" [reduced]" if reduced else ""))
    result = run_symbolic_kernel(reduced=reduced)
    print(result.describe())
    _check_kernel(result, reduced)


if __name__ == "__main__":
    main()
