"""E8 — SDG error control (Eq. 3) enabled by the numerical reference.

Context benchmark: the whole point of the reference is to let SDG stop
accumulating terms once the generated sum represents the required fraction of
each coefficient.  The bench measures the SDG pass on the two-stage Miller OTA
and asserts that (a) the Eq. 3 budget is met for every coefficient and (b) the
term count collapses by a large factor — the compression that makes symbolic
expressions of medium circuits interpretable.
"""

import math

import pytest

from repro.interpolation.reference import generate_reference
from repro.symbolic.generation import symbolic_network_function
from repro.symbolic.sdg import simplification_during_generation


@pytest.fixture(scope="module")
def miller_reference(miller):
    circuit, spec = miller
    return generate_reference(circuit, spec)


@pytest.fixture(scope="module")
def miller_symbolic(miller):
    circuit, spec = miller
    return symbolic_network_function(circuit, spec)


@pytest.mark.benchmark(group="sdg")
def test_sdg_error_control(benchmark, miller, miller_reference, miller_symbolic):
    circuit, spec = miller
    epsilon = 0.01

    result = benchmark(
        lambda: simplification_during_generation(
            circuit, spec, miller_reference, epsilon=epsilon,
            transfer_function=miller_symbolic))
    kept, total = result.total_terms()
    assert kept < total
    assert result.compression() > 0.5
    for report in result.reports:
        if math.isfinite(report.achieved_error):
            assert report.achieved_error <= epsilon * 1.5 + 1e-12


@pytest.mark.benchmark(group="sdg")
def test_sdg_epsilon_sweep_monotone(benchmark, miller, miller_reference,
                                    miller_symbolic):
    circuit, spec = miller

    def sweep():
        kept_counts = []
        for epsilon in (0.1, 0.01, 0.001):
            result = simplification_during_generation(
                circuit, spec, miller_reference, epsilon=epsilon,
                transfer_function=miller_symbolic)
            kept_counts.append(result.total_terms()[0])
        return kept_counts

    kept_counts = benchmark(sweep)
    assert kept_counts[0] <= kept_counts[1] <= kept_counts[2]
