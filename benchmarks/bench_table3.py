"""E3 — Table 3: µA741 denominator, full adaptive run covers every coefficient.

Paper claim: a third interpolation (after the Table 2 pair) delivers the
remaining high-order coefficients; the union of the valid regions covers the
whole polynomial, and the denormalized coefficients span hundreds of decades.
"""

import pytest

from repro.interpolation.adaptive import AdaptiveScalingInterpolator
from repro.nodal.sampler import NetworkFunctionSampler


@pytest.mark.benchmark(group="table3")
def test_table3_full_denominator_coverage(benchmark, ua741_admittance):
    circuit, spec = ua741_admittance

    def full_run():
        sampler = NetworkFunctionSampler(circuit, spec)
        return AdaptiveScalingInterpolator(sampler, "denominator").run()

    result = benchmark(full_run)
    assert result.converged
    # At least three interpolations, as in the paper's Tables 2-3 sequence.
    assert result.iteration_count() >= 3
    # Every coefficient is either determined or provably negligible.
    assert all(status in ("valid", "negligible") for status in result.status)
    # The union of the per-iteration valid regions covers 0..n.
    covered = set()
    for record in result.iterations:
        if record.region_start is not None:
            covered.update(range(record.region_start, record.region_end + 1))
    valid_indices = {power for power, status in enumerate(result.status)
                     if status == "valid"}
    assert valid_indices <= covered

    # Denormalized coefficients span far more than the double-precision range
    # (the paper's Table 3 reaches 1e-522).
    logs = [c.log10() for c in result.coefficients if not c.is_zero()]
    assert max(logs) - min(logs) > 300.0


@pytest.mark.benchmark(group="table3")
def test_table3_numerator_also_covered(benchmark, ua741_admittance):
    circuit, spec = ua741_admittance

    def numerator_run():
        sampler = NetworkFunctionSampler(circuit, spec)
        return AdaptiveScalingInterpolator(sampler, "numerator").run()

    result = benchmark(numerator_run)
    assert result.converged
    assert result.valid_count() >= result.degree_bound // 2
